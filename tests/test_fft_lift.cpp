#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "fft/lift_fft.h"
#include "fft/tables.h"

namespace matcha {
namespace {

IntPolynomial random_digits(Rng& rng, int n, int amp = 512) {
  IntPolynomial p(n);
  for (auto& c : p.coeffs) c = static_cast<int>(rng.uniform_below(2 * amp)) - amp;
  return p;
}

TorusPolynomial random_torus(Rng& rng, int n) {
  TorusPolynomial p(n);
  for (auto& c : p.coeffs) c = rng.uniform_torus();
  return p;
}

double product_rms_error(const LiftFftEngine& eng, Rng& rng, int trials) {
  const int n = eng.ring_n();
  double sum2 = 0;
  int count = 0;
  for (int t = 0; t < trials; ++t) {
    const IntPolynomial a = random_digits(rng, n);
    const TorusPolynomial b = random_torus(rng, n);
    TorusPolynomial ref(n);
    negacyclic_multiply_reference(ref, a, b);
    SpectralI sa, sb;
    SpectralAccI acc;
    eng.to_spectral_int(a, sa);
    eng.to_spectral_torus(b, sb);
    eng.acc_init(acc);
    eng.mac(acc, sa, sb);
    TorusPolynomial out(n);
    eng.from_spectral_acc(acc, out);
    for (int i = 0; i < n; ++i) {
      const double d = torus_distance(ref.coeffs[i], out.coeffs[i]);
      sum2 += d * d;
      ++count;
    }
  }
  return std::sqrt(sum2 / count);
}

// ---- Lifting rotations ----------------------------------------------------

class RotationQuant : public ::testing::TestWithParam<int> {};

TEST_P(RotationQuant, PerfectReconstruction) {
  // The quantized lifting rotation must be exactly invertible on integers --
  // the "perfect reconstruction" property the paper inherits from Oraintara.
  const int bits = GetParam();
  LiftFftEngine eng(64, bits);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const double theta = (rng.uniform_double() - 0.5) * 4.0 * std::numbers::pi;
    const LiftRotation rot = make_lift_rotation(theta, bits);
    const int64_t x0 = static_cast<int64_t>(rng.next_u64() >> 22) - (1LL << 41);
    const int64_t y0 = static_cast<int64_t>(rng.next_u64() >> 22) - (1LL << 41);
    int64_t x = x0, y = y0;
    eng.apply_rotation(x, y, rot);
    eng.apply_rotation_inverse(x, y, rot);
    EXPECT_EQ(x, x0);
    EXPECT_EQ(y, y0);
  }
}

TEST_P(RotationQuant, ApproximatesTrueRotation) {
  const int bits = GetParam();
  LiftFftEngine eng(64, bits);
  Rng rng(2);
  // Error floor: value-rounding inside the lifting steps (~2^-40 of the
  // operand scale) dominates beyond ~40-bit twiddles.
  const double tol = std::ldexp(4.0, -std::min(bits - 2, 36));
  for (int i = 0; i < 200; ++i) {
    const double theta = (rng.uniform_double() - 0.5) * 4.0 * std::numbers::pi;
    const LiftRotation rot = make_lift_rotation(theta, bits);
    const double scale = 1LL << 40;
    int64_t x = static_cast<int64_t>(scale * (rng.uniform_double() - 0.5));
    int64_t y = static_cast<int64_t>(scale * (rng.uniform_double() - 0.5));
    const double ex = x * std::cos(theta) - y * std::sin(theta);
    const double ey = x * std::sin(theta) + y * std::cos(theta);
    eng.apply_rotation(x, y, rot);
    const double mag = std::hypot(ex, ey) + scale * 0.01;
    EXPECT_NEAR(x / mag, ex / mag, tol) << "theta=" << theta;
    EXPECT_NEAR(y / mag, ey / mag, tol) << "theta=" << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, RotationQuant,
                         ::testing::Values(12, 20, 30, 38, 50, 64));

TEST(Rotation, CoefficientsWellConditioned) {
  // Octant reduction keeps |c| <= tan(pi/8), |s| <= sin(pi/4).
  for (int i = 0; i <= 1000; ++i) {
    const double theta = i * 2.0 * std::numbers::pi / 1000.0;
    const LiftRotation r = make_lift_rotation(theta, 40);
    const double scale = std::ldexp(1.0, -r.shift);
    EXPECT_LE(std::abs(r.c_num * scale), std::tan(std::numbers::pi / 8) + 1e-9);
    EXPECT_LE(std::abs(r.s_num * scale), std::sin(std::numbers::pi / 4) + 1e-9);
  }
}

TEST(Rotation, CsdCountsPositive) {
  const LiftRotation r = make_lift_rotation(0.7, 38);
  EXPECT_GT(r.csd_adders(), 0);
  EXPECT_GT(r.csd_shifters(), 0);
}

TEST(LiftTables, TotalAdderCountScalesWithN) {
  const auto t256 = make_lift_tables(256, 38);
  const auto t1024 = make_lift_tables(1024, 38);
  EXPECT_GT(t1024.total_csd_adders_forward(),
            3 * t256.total_csd_adders_forward());
}

// ---- Whole-transform properties -------------------------------------------

class LiftEngineBits : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LiftEngineBits, ProductErrorWithinExpectedBand) {
  const auto [n, bits] = GetParam();
  LiftFftEngine eng(n, bits);
  Rng rng(3);
  const double rms = product_rms_error(eng, rng, 3);
  // Quantization-limited region: ~6 dB/bit (paper Fig. 8). Generous bands.
  const double db = 20.0 * std::log10(rms + 1e-30);
  if (bits >= 50) {
    EXPECT_LT(db, -130.0);
  } else if (bits >= 38) {
    EXPECT_LT(db, -100.0);
  } else if (bits >= 30) {
    EXPECT_LT(db, -80.0);
  } else {
    EXPECT_LT(db, -25.0); // 20-bit
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LiftEngineBits,
                         ::testing::Combine(::testing::Values(64, 256, 1024,
                                                              2048),
                                            ::testing::Values(20, 30, 38, 50,
                                                              64)));

TEST(LiftEngine, ErrorMonotonicallyImprovesWithBits) {
  const int n = 1024;
  double prev = 1e9;
  for (int bits : {12, 20, 28, 36, 44}) {
    LiftFftEngine eng(n, bits);
    Rng rng(4);
    const double rms = product_rms_error(eng, rng, 2);
    EXPECT_LT(rms, prev * 1.1) << "bits=" << bits;
    prev = rms;
  }
}

TEST(LiftEngine, RoundTripExactAtHighPrecision) {
  const int n = 512;
  LiftFftEngine eng(n, 64);
  Rng rng(5);
  const TorusPolynomial p = random_torus(rng, n);
  SpectralI s;
  eng.to_spectral_torus(p, s);
  TorusPolynomial back(n);
  eng.from_spectral_torus(s, back);
  // kTorusPreShift headroom makes the roundtrip bit-exact at 64-bit DVQTFs.
  EXPECT_EQ(back, p);
}

TEST(LiftEngine, DigitPathExactOnMonomials) {
  const int n = 256;
  LiftFftEngine eng(n, 64);
  IntPolynomial a(n);
  a.coeffs[3] = 1; // X^3
  TorusPolynomial b(n);
  Rng rng(6);
  for (auto& c : b.coeffs) c = rng.uniform_torus();
  TorusPolynomial ref(n);
  negacyclic_multiply_reference(ref, a, b);
  SpectralI sa, sb;
  SpectralAccI acc;
  eng.to_spectral_int(a, sa);
  eng.to_spectral_torus(b, sb);
  eng.acc_init(acc);
  eng.mac(acc, sa, sb);
  TorusPolynomial out(n);
  eng.from_spectral_acc(acc, out);
  EXPECT_LE(max_torus_distance(out, ref), 1e-7);
}

TEST(LiftEngine, MacAccumulatesSixRows) {
  const int n = 256;
  LiftFftEngine eng(n, 64);
  Rng rng(7);
  TorusPolynomial ref(n);
  SpectralAccI acc;
  eng.acc_init(acc);
  for (int r = 0; r < 6; ++r) {
    const IntPolynomial a = random_digits(rng, n);
    const TorusPolynomial b = random_torus(rng, n);
    negacyclic_multiply_add_reference(ref, a, b);
    SpectralI sa, sb;
    eng.to_spectral_int(a, sa);
    eng.to_spectral_torus(b, sb);
    eng.mac(acc, sa, sb);
  }
  TorusPolynomial out(n);
  eng.from_spectral_acc(acc, out);
  EXPECT_LE(max_torus_distance(out, ref), 1e-6);
}

TEST(LiftEngine, RotScaleAddMatchesCoefficientDomain) {
  const int n = 256;
  LiftFftEngine eng(n, 64);
  Rng rng(8);
  const TorusPolynomial p = random_torus(rng, n);
  for (int64_t c : {1, 7, 100, 256, 300, 511}) {
    SpectralI sp, dst(n / 2);
    eng.to_spectral_torus(p, sp);
    dst.clear();
    eng.rot_scale_add(dst, sp, c);
    TorusPolynomial got(n);
    eng.from_spectral_torus(dst, got);
    TorusPolynomial ref(n);
    multiply_by_xpower_minus_one(ref, p, -c);
    EXPECT_LE(max_torus_distance(got, ref), 2e-6) << "c=" << c;
  }
}

TEST(LiftEngine, AddConstant) {
  const int n = 128;
  LiftFftEngine eng(n, 64);
  SpectralI s(n / 2);
  const Torus32 g = double_to_torus32(0.0625);
  eng.add_constant(s, g);
  TorusPolynomial out(n);
  eng.from_spectral_torus(s, out);
  EXPECT_LE(torus_distance(out.coeffs[0], g), 1e-7);
  for (int i = 1; i < n; ++i) EXPECT_LE(torus_distance(out.coeffs[i], 0), 1e-7);
}

TEST(LiftEngine, RotScaleByZeroExponentIsNoOp) {
  // (X^0 - 1) = 0: the bundle builder relies on skipping these, but the
  // primitive itself must also be exact about it.
  const int n = 256;
  LiftFftEngine eng(n, 40);
  Rng rng(11);
  const TorusPolynomial p = random_torus(rng, n);
  SpectralI sp, dst(n / 2);
  eng.to_spectral_torus(p, sp);
  dst.clear();
  eng.rot_scale_add(dst, sp, 0);
  for (int k = 0; k < n / 2; ++k) {
    EXPECT_EQ(dst.re[k], 0) << k;
    EXPECT_EQ(dst.im[k], 0) << k;
  }
}

TEST(LiftEngine, RotScaleFullPeriodIsNoOp) {
  const int n = 256;
  LiftFftEngine eng(n, 40);
  Rng rng(12);
  const TorusPolynomial p = random_torus(rng, n);
  SpectralI sp, dst(n / 2);
  eng.to_spectral_torus(p, sp);
  dst.clear();
  eng.rot_scale_add(dst, sp, 2 * n); // X^{2N} = 1
  for (int k = 0; k < n / 2; ++k) {
    EXPECT_EQ(dst.re[k], 0) << k;
    EXPECT_EQ(dst.im[k], 0) << k;
  }
}

TEST(LiftEngine, ZeroPolynomialStaysZero) {
  const int n = 256;
  LiftFftEngine eng(n, 40);
  IntPolynomial z(n);
  SpectralI s;
  eng.to_spectral_int(z, s);
  for (int k = 0; k < n / 2; ++k) {
    EXPECT_EQ(s.re[k], 0);
    EXPECT_EQ(s.im[k], 0);
  }
}

TEST(LiftEngine, OpCountersAdvance) {
  const int n = 256;
  LiftFftEngine eng(n, 38);
  Rng rng(9);
  eng.counters().reset();
  SpectralI s;
  eng.to_spectral_torus(random_torus(rng, n), s);
  EXPECT_GT(eng.counters().lift_steps, 0);
  EXPECT_GT(eng.counters().adds, 0);
  EXPECT_EQ(eng.counters().to_spectral_calls, 1);
}

TEST(LiftEngine, MultiplicationLessButterfliesOnlyAddAndShift) {
  // Structural check: every rotation constant is dyadic with shift = t-1,
  // i.e. realizable as CSD shift-adds on 64-bit registers.
  const auto tables = make_lift_tables(1024, 38);
  for (const auto& stage : tables.stage_rot) {
    for (const auto& r : stage) {
      EXPECT_EQ(r.shift, 37);
      EXPECT_LT(std::abs(r.c_num), int64_t{1} << 37);
      EXPECT_LT(std::abs(r.s_num), int64_t{1} << 37);
    }
  }
}

} // namespace
} // namespace matcha
