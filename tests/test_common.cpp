#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bits.h"
#include "common/rng.h"
#include "common/types.h"

namespace matcha {
namespace {

TEST(Torus, RoundTripDouble) {
  for (double d : {0.0, 0.25, -0.25, 0.125, -0.49999, 0.111, -0.333}) {
    const Torus32 t = double_to_torus32(d);
    EXPECT_NEAR(torus32_to_double(t), d, 1e-9) << d;
  }
}

TEST(Torus, FractionExact) {
  EXPECT_EQ(torus_fraction(1, 8), 0x20000000u);
  EXPECT_EQ(torus_fraction(1, 2), 0x80000000u);
  EXPECT_EQ(torus_fraction(3, 8), 0x60000000u);
  EXPECT_EQ(torus_fraction(-1, 8), static_cast<Torus32>(-0x20000000));
}

TEST(Torus, WrapAroundAddition) {
  const Torus32 a = double_to_torus32(0.4);
  const Torus32 b = double_to_torus32(0.3);
  // 0.7 wraps to -0.3.
  EXPECT_NEAR(torus32_to_double(a + b), -0.3, 1e-8);
}

TEST(Torus, DistanceSymmetricAndWrapped) {
  const Torus32 a = double_to_torus32(0.49);
  const Torus32 b = double_to_torus32(-0.49);
  EXPECT_NEAR(torus_distance(a, b), 0.02, 1e-8);
  EXPECT_DOUBLE_EQ(torus_distance(a, a), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformBelowInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform_below(37), 37u);
}

TEST(Rng, UniformDoubleRange) {
  Rng r(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(3);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianTorusStdDev) {
  Rng r(4);
  const double sigma = 1e-3;
  const int n = 100000;
  double sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double e = torus32_to_double(r.gaussian_torus(sigma));
    sum2 += e * e;
  }
  EXPECT_NEAR(std::sqrt(sum2 / n), sigma, sigma * 0.05);
}

TEST(Rng, BitsAreBalanced) {
  Rng r(5);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += r.uniform_bit();
  EXPECT_NEAR(ones, 5000, 300);
}

class CsdProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(CsdProperty, ReconstructsValue) {
  const int64_t v = GetParam();
  int64_t sum = 0;
  for (const auto& d : csd_encode(v)) {
    sum += d.sign * (int64_t{1} << d.pos);
  }
  EXPECT_EQ(sum, v);
}

TEST_P(CsdProperty, NoAdjacentNonzeroDigits) {
  const auto digits = csd_encode(GetParam());
  for (size_t i = 1; i < digits.size(); ++i) {
    EXPECT_GE(digits[i].pos - digits[i - 1].pos, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, CsdProperty,
                         ::testing::Values(0, 1, -1, 2, 3, 7, 9, 45, 127, 128,
                                           255, 1023, 0x5555, 0x7FFFFFFF,
                                           (int64_t{1} << 40) - 1, 0xDEADBEEF));

TEST(Csd, AdderCountsMinimalExamples) {
  EXPECT_EQ(csd_adder_count(0), 0);
  EXPECT_EQ(csd_adder_count(8), 0);  // single shift
  EXPECT_EQ(csd_adder_count(9), 1);  // 8 + 1
  EXPECT_EQ(csd_adder_count(7), 1);  // 8 - 1
  EXPECT_EQ(csd_adder_count(255), 1); // 256 - 1 (CSD beats binary's 7 adds)
}

TEST(Csd, RandomValuesBeatBinaryPopcount) {
  Rng r(6);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = static_cast<int64_t>(r.next_u64() >> 20);
    EXPECT_LE(csd_digit_count(v), __builtin_popcountll(v) + 1) << v;
  }
}

TEST(Bits, Pow2AndLog) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_EQ(ilog2(1023), 9);
}

} // namespace
} // namespace matcha
