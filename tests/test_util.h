// Shared, lazily-built key material for the test suite. Key generation is
// the dominant test cost; every test file shares these singletons.
#pragma once

#include <memory>

#include "fft/double_fft.h"
#include "fft/lift_fft.h"
#include "tfhe/keyset.h"

namespace matcha::test {

struct SharedKeys {
  TfheParams params = TfheParams::test_small();
  Rng rng{0xC0FFEE};
  SecretKeyset sk = SecretKeyset::generate(params, rng);
  CloudKeyset ck1 = make_cloud_keyset(sk, 1, rng);
  CloudKeyset ck2 = make_cloud_keyset(sk, 2, rng);
  CloudKeyset ck3 = make_cloud_keyset(sk, 3, rng);
  DoubleFftEngine deng{params.ring.n_ring};
  LiftFftEngine leng{params.ring.n_ring, 40};
};

inline const SharedKeys& shared_keys() {
  static const SharedKeys keys;
  return keys;
}

/// A fresh deterministic RNG per test (seeded by name hash would be overkill;
/// fixed seeds keep failures reproducible).
inline Rng test_rng(uint64_t seed = 42) { return Rng(seed); }

} // namespace matcha::test
