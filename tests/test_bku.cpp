#include <gtest/gtest.h>

#include "bku/bundle.h"
#include "test_util.h"

namespace matcha {
namespace {

using test::shared_keys;

TEST(UnrolledKey, GroupCountsAndTail) {
  const auto& K = shared_keys();
  const int n = K.params.lwe.n; // 180
  EXPECT_EQ(K.ck1.bk.num_groups(), n);
  EXPECT_EQ(K.ck2.bk.num_groups(), (n + 1) / 2);
  EXPECT_EQ(K.ck3.bk.num_groups(), (n + 2) / 3);
  // Every full group stores 2^m - 1 TGSW samples.
  EXPECT_EQ(K.ck1.bk.groups[0].size(), 1u);
  EXPECT_EQ(K.ck2.bk.groups[0].size(), 3u);
  EXPECT_EQ(K.ck3.bk.groups[0].size(), 7u);
}

TEST(UnrolledKey, TotalTgswMatchesTable3Blowup) {
  const auto& K = shared_keys();
  const int n = K.params.lwe.n;
  EXPECT_EQ(K.ck1.bk.total_tgsw(), n);
  EXPECT_EQ(K.ck2.bk.total_tgsw(), 3 * (n / 2));
  EXPECT_EQ(K.ck3.bk.total_tgsw(), 7 * (n / 3));
}

TEST(UnrolledKey, IndicatorsEncryptSecretPatterns) {
  // For each group, exactly one nonzero-mask indicator can be 1 (the one
  // matching the secret bits), and it is 1 iff the secret pattern is nonzero.
  const auto& K = shared_keys();
  const auto& bk = K.ck3.bk;
  const auto& g = K.params.gadget;
  for (int grp : {0, 1, 10, 42}) {
    const int start = grp * bk.unroll_m;
    const int mg = bk.members(grp);
    uint32_t secret_mask = 0;
    for (int j = 0; j < mg; ++j) {
      secret_mask |= static_cast<uint32_t>(K.sk.lwe.s[start + j]) << j;
    }
    for (uint32_t mask = 1; mask < (1u << mg); ++mask) {
      // Decrypt the TGSW message from its top b-row: phase ~= msg / Bg.
      const auto& tgsw = bk.groups[grp][mask - 1];
      const TorusPolynomial phase = tlwe_phase(K.sk.tlwe, tgsw.rows[g.l]);
      const Torus32 one = 1u << (32 - g.bg_bits);
      const int msg = torus_distance(phase.coeffs[0], one) < 0.25 / g.bg() ? 1 : 0;
      EXPECT_EQ(msg, mask == secret_mask ? 1 : 0)
          << "grp=" << grp << " mask=" << mask;
    }
  }
}

TEST(SubsetExponents, SingleRoundingPerSubset) {
  // c_S must equal ModSwitch(sum of torus values), not the sum of
  // ModSwitch'd values (the RO/m property of Table 3).
  const int n_ring = 256;
  Torus32 a[3] = {double_to_torus32(0.30001), double_to_torus32(0.19999),
                  double_to_torus32(0.125)};
  std::vector<int32_t> exps;
  group_subset_exponents(a, 3, n_ring, exps);
  ASSERT_EQ(exps.size(), 7u);
  // mask = 3 -> a0 + a1 = 0.5 exactly -> 256.
  EXPECT_EQ(exps[2], mod_switch_to_2n(a[0] + a[1], n_ring));
  EXPECT_EQ(exps[2], 256);
  for (uint32_t mask = 1; mask < 8; ++mask) {
    Torus32 sum = 0;
    for (int j = 0; j < 3; ++j) {
      if (mask & (1u << j)) sum += a[j];
    }
    EXPECT_EQ(exps[mask - 1], mod_switch_to_2n(sum, n_ring)) << mask;
  }
}

TEST(Bundle, AllZeroExponentsReportsIdentity) {
  const auto& K = shared_keys();
  const auto dev = load_bootstrap_key(K.deng, K.ck2.bk);
  auto bundle = make_bundle_storage(K.deng, K.params.gadget);
  const std::vector<int32_t> zeros(3, 0);
  EXPECT_FALSE(build_bundle(K.deng, dev, 0, zeros, bundle));
}

TEST(Bundle, ActsAsXPowerRotationOnPhase) {
  // BKB (x) (0, mu) should rotate mu by X^{sum a_i s_i}.
  const auto& K = shared_keys();
  const auto& eng = K.deng;
  const auto dev = load_bootstrap_key(eng, K.ck2.bk);
  const int n = K.params.ring.n_ring;
  Rng rng = test::test_rng(4);

  for (int grp : {0, 3, 20}) {
    const int start = grp * 2;
    Torus32 a[2] = {rng.uniform_torus(), rng.uniform_torus()};
    std::vector<int32_t> exps;
    group_subset_exponents(a, 2, n, exps);
    auto bundle = make_bundle_storage(eng, K.params.gadget);
    ASSERT_TRUE(build_bundle(eng, dev, grp, exps, bundle));

    TorusPolynomial mu(n);
    mu.coeffs[0] = torus_fraction(1, 4);
    TLweSample acc = TLweSample::trivial(mu);
    ExternalProductWorkspace<DoubleFftEngine> ws(eng, K.params.gadget);
    external_product(eng, K.params.gadget, bundle, acc, ws);

    // Expected rotation: the exponent of the secret's actual pattern.
    const int s0 = K.sk.lwe.s[start], s1 = K.sk.lwe.s[start + 1];
    const uint32_t mask = static_cast<uint32_t>(s0) | (static_cast<uint32_t>(s1) << 1);
    TorusPolynomial expect(n);
    if (mask == 0) {
      expect = mu;
    } else {
      multiply_by_xpower(expect, mu, exps[mask - 1]);
    }
    const TorusPolynomial phase = tlwe_phase(K.sk.tlwe, acc);
    EXPECT_LE(max_torus_distance(phase, expect), 2e-3) << "grp=" << grp;
  }
}

TEST(Bundle, LiftEngineMatchesDoubleEngine) {
  const auto& K = shared_keys();
  const auto dev_d = load_bootstrap_key(K.deng, K.ck2.bk);
  const auto dev_l = load_bootstrap_key(K.leng, K.ck2.bk);
  const int n = K.params.ring.n_ring;
  Rng rng = test::test_rng(5);
  Torus32 a[2] = {rng.uniform_torus(), rng.uniform_torus()};
  std::vector<int32_t> exps;
  group_subset_exponents(a, 2, n, exps);

  TorusPolynomial mu(n);
  mu.coeffs[0] = torus_fraction(1, 4);

  auto run = [&](const auto& eng, const auto& dev) {
    auto bundle = make_bundle_storage(eng, K.params.gadget);
    build_bundle(eng, dev, 7, exps, bundle);
    TLweSample acc = TLweSample::trivial(mu);
    ExternalProductWorkspace<std::decay_t<decltype(eng)>> ws(eng, K.params.gadget);
    external_product(eng, K.params.gadget, bundle, acc, ws);
    return tlwe_phase(K.sk.tlwe, acc);
  };
  const TorusPolynomial pd = run(K.deng, dev_d);
  const TorusPolynomial pl = run(K.leng, dev_l);
  EXPECT_LE(max_torus_distance(pd, pl), 1e-3);
}

TEST(DeviceKey, LoadPreservesShape) {
  const auto& K = shared_keys();
  const auto dev = load_bootstrap_key(K.leng, K.ck3.bk);
  EXPECT_EQ(dev.unroll_m, 3);
  EXPECT_EQ(dev.n_lwe, K.params.lwe.n);
  EXPECT_EQ(dev.num_groups(), K.ck3.bk.num_groups());
  EXPECT_EQ(dev.groups[0].size(), 7u);
  EXPECT_EQ(dev.groups[0][0].rows_count(), 2 * K.params.gadget.l);
}

} // namespace
} // namespace matcha
