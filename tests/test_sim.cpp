#include <gtest/gtest.h>

#include <map>

#include "sim/gate_dag.h"
#include "sim/matcha_sim.h"

namespace matcha::sim {
namespace {

const TfheParams kParams = TfheParams::security110();

TEST(Dfg, NodeCountsPerKind) {
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 2;
  const Dfg g = build_bootstrap_dfg(p);
  std::map<OpKind, int> counts;
  for (const auto& n : g.nodes) counts[n.kind]++;
  EXPECT_EQ(counts[OpKind::kPrologue], 1);
  EXPECT_EQ(counts[OpKind::kHbmLoad], p.num_groups());
  EXPECT_EQ(counts[OpKind::kBundle], p.num_groups());
  EXPECT_EQ(counts[OpKind::kExternalProd], p.num_groups());
  EXPECT_EQ(counts[OpKind::kExtract], 1);
  EXPECT_EQ(counts[OpKind::kKeySwitch], 1);
  EXPECT_GT(counts[OpKind::kKsLoad], 0);
}

TEST(Dfg, TopologicalAndDepValid) {
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 3;
  const Dfg g = build_bootstrap_dfg(p);
  for (const auto& n : g.nodes) {
    for (int d : n.deps) {
      EXPECT_LT(d, n.id);
      EXPECT_GE(d, 0);
    }
  }
}

TEST(Schedule, RespectsDependenciesAndResources) {
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 2;
  const Dfg g = build_bootstrap_dfg(p);
  const ScheduleResult s = schedule(g);
  // Dependencies respected.
  for (const auto& n : g.nodes) {
    for (int d : n.deps) EXPECT_GE(s.start[n.id], s.end[d]);
  }
  // No overlap on any single resource.
  std::map<Resource, std::vector<std::pair<int64_t, int64_t>>> by_res;
  for (const auto& n : g.nodes) {
    by_res[n.resource].push_back({s.start[n.id], s.end[n.id]});
  }
  for (auto& [res, spans] : by_res) {
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << resource_name(res) << " overlap at " << i;
    }
  }
}

TEST(Schedule, BusyNeverExceedsMakespan) {
  SimParams p;
  p.tfhe = kParams;
  for (int m = 1; m <= 4; ++m) {
    p.unroll_m = m;
    const ScheduleResult s = schedule(build_bootstrap_dfg(p));
    for (int r = 0; r < static_cast<int>(Resource::kCount); ++r) {
      EXPECT_LE(s.busy[r], s.makespan);
    }
  }
}

TEST(Schedule, BundlesPipelineAheadOfEps) {
  // Fig. 6(b): while EP g runs, bundle g+1 must already be building.
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 3;
  const Dfg g = build_bootstrap_dfg(p);
  const ScheduleResult s = schedule(g);
  std::vector<int64_t> bundle_start(p.num_groups()), ep_start(p.num_groups()),
      ep_end(p.num_groups());
  for (const auto& n : g.nodes) {
    if (n.kind == OpKind::kBundle) bundle_start[n.group] = s.start[n.id];
    if (n.kind == OpKind::kExternalProd) {
      ep_start[n.group] = s.start[n.id];
      ep_end[n.group] = s.end[n.id];
    }
  }
  int overlapped = 0;
  for (int grp = 1; grp < p.num_groups(); ++grp) {
    if (bundle_start[grp] < ep_end[grp - 1]) ++overlapped;
  }
  EXPECT_GT(overlapped, p.num_groups() / 2);
}

TEST(Sim, LatencyShapeMatchesPaper) {
  // Fig. 9 MATCHA series: improves to m=3, degrades at m=4 (only 8 TGSW
  // clusters; the bundle construction becomes the bottleneck).
  const auto r1 = simulate_gate(kParams, 1);
  const auto r2 = simulate_gate(kParams, 2);
  const auto r3 = simulate_gate(kParams, 3);
  const auto r4 = simulate_gate(kParams, 4);
  EXPECT_LT(r2.latency_ms, r1.latency_ms);
  EXPECT_LT(r3.latency_ms, r2.latency_ms);
  EXPECT_GT(r4.latency_ms, r3.latency_ms);
  // Absolute anchors (loose): sub-millisecond everywhere, ~0.15-0.25 at m=3.
  EXPECT_LT(r3.latency_ms, 0.25);
  EXPECT_GT(r3.latency_ms, 0.10);
  EXPECT_LT(r1.latency_ms, 1.0);
}

TEST(Sim, PipelineBalancedAtM3) {
  // The paper: "the workloads of the two steps ... approximately balanced by
  // adjusting m" -- at m=3 both units are busy most of the time.
  const auto r = simulate_gate(kParams, 3);
  EXPECT_GT(r.util_ep, 0.7);
  EXPECT_GT(r.util_tgsw, 0.5);
  // At m=1 the TGSW cluster idles.
  const auto r1 = simulate_gate(kParams, 1);
  EXPECT_LT(r1.util_tgsw, 0.3);
  EXPECT_GT(r1.util_ep, 0.9);
}

TEST(Sim, HbmTrafficGrowsExponentiallyWithM) {
  double prev = 0;
  for (int m = 1; m <= 5; ++m) {
    const auto r = simulate_gate(kParams, m);
    EXPECT_GT(r.hbm_mb, prev);
    prev = r.hbm_mb;
  }
  const auto r1 = simulate_gate(kParams, 1);
  // BK (spectral, 48KB per TGSW at N=1024, l=3) + KS key.
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 1;
  EXPECT_NEAR(r1.hbm_mb,
              (p.bootstrap_bk_bytes() + p.ks_bytes()) / 1e6, 0.01);
  EXPECT_EQ(p.tgsw_bytes(), 6 * 2 * 1024 * 4);
}

TEST(Sim, ThroughputCappedByHbm) {
  const auto r4 = simulate_gate(kParams, 4);
  const double hbm_cap = 640e9 / (r4.hbm_mb * 1e6);
  EXPECT_LE(r4.gates_per_s, hbm_cap * 1.001);
  // Doubling bandwidth must raise m=4 throughput.
  hw::MatchaConfig fat;
  fat.hbm_gbps = 1280.0;
  const auto rfat = simulate_gate(kParams, 4, fat);
  EXPECT_GT(rfat.gates_per_s, r4.gates_per_s * 1.5);
}

TEST(Sim, EnergyAndPowerSane) {
  for (int m = 1; m <= 4; ++m) {
    const auto r = simulate_gate(kParams, m);
    EXPECT_GT(r.energy_mj, 0.0);
    EXPECT_GT(r.avg_power_w, 0.5);
    // A single pipeline can't exceed its cluster+EP+share-of-uncore budget.
    EXPECT_LT(r.avg_power_w, 8.0);
    // Component breakdown sums to the total.
    EXPECT_NEAR(r.energy_tgsw_mj + r.energy_ep_mj + r.energy_poly_mj +
                    r.energy_uncore_mj,
                r.energy_mj, r.energy_mj * 1e-9);
  }
}

TEST(Sim, EnergyShiftsFromEpToTgswWithM) {
  // BKU's energy story: external products shrink ~1/m while bundle terms
  // grow (2^m - 1)/m, so the TGSW share must rise monotonically.
  double prev_share = 0.0;
  for (int m = 1; m <= 4; ++m) {
    const auto r = simulate_gate(kParams, m);
    const double share = r.energy_tgsw_mj / r.energy_mj;
    EXPECT_GT(share, prev_share) << m;
    prev_share = share;
  }
  // And the EP cores dominate a non-unrolled bootstrap.
  const auto r1 = simulate_gate(kParams, 1);
  EXPECT_GT(r1.energy_ep_mj, 3.0 * r1.energy_tgsw_mj);
}

TEST(Sim, MoreEpMacSlicesShortenM1Latency) {
  hw::MatchaConfig wide;
  wide.ep_mults = 8;
  const auto base = simulate_gate(kParams, 1);
  const auto fast = simulate_gate(kParams, 1, wide);
  EXPECT_LT(fast.latency_ms, base.latency_ms * 0.75);
}

TEST(BatchSchedule, SingleGateMatchesScalarScheduler) {
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 3;
  const Dfg g = build_bootstrap_dfg(p);
  const ScheduleResult single = schedule(g);
  const BatchScheduleResult b = schedule_batch(g, 1, p.hw.pipelines);
  EXPECT_EQ(b.makespan, single.makespan);
  ASSERT_EQ(b.gate_end.size(), 1u);
  EXPECT_EQ(b.gate_end[0], b.makespan);
}

TEST(BatchSchedule, EmptyBatch) {
  SimParams p;
  p.tfhe = kParams;
  const Dfg g = build_bootstrap_dfg(p);
  const BatchScheduleResult b = schedule_batch(g, 0, p.hw.pipelines);
  EXPECT_EQ(b.makespan, 0);
  EXPECT_TRUE(b.gate_end.empty());
}

TEST(BatchSchedule, ParallelPipelinesBeatSerialExecution) {
  // A batch the size of the chip's pipeline count must finish much faster
  // than running the gates back to back, and never faster than
  // perfectly-linear scaling allows. m=1 keeps the bootstrapping key small
  // enough that the batch is compute-bound, not HBM-bound.
  const int pipelines = hw::MatchaConfig{}.pipelines;
  const auto b = simulate_batch(kParams, 1, pipelines);
  EXPECT_GT(b.speedup_vs_serial, 2.0);
  EXPECT_LE(b.speedup_vs_serial, pipelines + 1e-9);
  EXPECT_GE(b.makespan_cycles, b.single_gate_cycles);
}

TEST(BatchSchedule, MakespanMonotonicInBatchSize) {
  int64_t prev = 0;
  for (int n : {1, 4, 8, 16, 32}) {
    const auto b = simulate_batch(kParams, 3, n);
    EXPECT_GE(b.makespan_cycles, prev) << n;
    prev = b.makespan_cycles;
  }
}

TEST(BatchSchedule, OccupancyRisesWithBatchSize) {
  // One gate leaves most pipelines idle; a full batch keeps them busy.
  const auto one = simulate_batch(kParams, 1, 1);
  const auto full = simulate_batch(kParams, 1, 4 * hw::MatchaConfig{}.pipelines);
  EXPECT_LT(one.pipeline_occupancy, full.pipeline_occupancy);
  EXPECT_GT(full.pipeline_occupancy, 0.3);
  EXPECT_LE(full.pipeline_occupancy, 1.0);
  EXPECT_LE(full.hbm_utilization, 1.0);
}

TEST(BatchSchedule, HbmContentionCapsScaling) {
  // Starving the chip of bandwidth must hurt a full batch more than a
  // single gate: the shared key stream becomes the bottleneck.
  hw::MatchaConfig thin;
  thin.hbm_gbps = 64.0; // 10x less than the paper's HBM2
  const auto fat = simulate_batch(kParams, 3, 16);
  const auto starved = simulate_batch(kParams, 3, 16, thin);
  EXPECT_LT(starved.speedup_vs_serial, fat.speedup_vs_serial);
  EXPECT_GT(starved.hbm_utilization, 0.9);
}

TEST(GateDagSchedule, ChainSerializesExactly) {
  // A dependency chain can never overlap: each gate replays the bootstrap
  // DFG starting where its predecessor ended.
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 1;
  const Dfg dfg = build_bootstrap_dfg(p);
  const int64_t single = schedule(dfg).makespan;
  GateDag chain;
  for (int i = 0; i < 4; ++i) {
    GateDagNode n;
    if (i > 0) n.deps.push_back(i - 1);
    chain.gates.push_back(n);
  }
  const auto r = schedule_gate_dag(dfg, chain, p.hw.pipelines);
  EXPECT_EQ(r.makespan, 4 * single);
  EXPECT_EQ(chain.critical_path_bootstraps(), 4);
}

TEST(GateDagSchedule, DiamondBeatsChain) {
  // a -> {b, c} -> d: the two middle gates are independent and must overlap
  // across pipelines, beating the equivalent 4-gate chain.
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 1;
  const Dfg dfg = build_bootstrap_dfg(p);
  GateDag diamond;
  diamond.gates.resize(4);
  diamond.gates[1].deps = {0};
  diamond.gates[2].deps = {0};
  diamond.gates[3].deps = {1, 2};
  GateDag chain;
  chain.gates.resize(4);
  for (int i = 1; i < 4; ++i) chain.gates[i].deps = {i - 1};
  const auto rd = schedule_gate_dag(dfg, diamond, p.hw.pipelines);
  const auto rc = schedule_gate_dag(dfg, chain, p.hw.pipelines);
  EXPECT_LT(rd.makespan, rc.makespan);
  EXPECT_EQ(diamond.critical_path_bootstraps(), 3);
}

TEST(GateDagSchedule, LinearGatesAreFree) {
  // NOT gates (bootstraps = 0) order results but consume no pipeline time.
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 1;
  const Dfg dfg = build_bootstrap_dfg(p);
  const int64_t single = schedule(dfg).makespan;
  GateDag dag;
  dag.gates.resize(3);
  dag.gates[0].bootstraps = 0; // NOT of an input
  dag.gates[1].bootstraps = 0;
  dag.gates[1].deps = {0};
  dag.gates[2].deps = {1}; // one real bootstrap at the end
  const auto r = schedule_gate_dag(dfg, dag, p.hw.pipelines);
  EXPECT_EQ(r.makespan, single);
  EXPECT_EQ(dag.total_bootstraps(), 1);
}

TEST(GateDagSchedule, IndependentGatesFillPipelines) {
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 1;
  const Dfg dfg = build_bootstrap_dfg(p);
  const int64_t single = schedule(dfg).makespan;
  GateDag wide;
  wide.gates.resize(p.hw.pipelines);
  const auto r = schedule_gate_dag(dfg, wide, p.hw.pipelines);
  // Much faster than serial, never faster than perfectly linear.
  EXPECT_LT(r.makespan, p.hw.pipelines * single / 2);
  EXPECT_GE(r.makespan, single);
  EXPECT_LE(r.hbm_utilization, 1.0);
  EXPECT_LE(r.pipeline_occupancy, 1.0);
}

TEST(GateDagSchedule, RecordingOrderIrrelevant) {
  // Two interleavings of the same two independent chains: dispatch is by
  // data readiness, so the makespan cannot depend on emission order.
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 2;
  const Dfg dfg = build_bootstrap_dfg(p);
  GateDag grouped; // A1 A2 B1 B2
  grouped.gates.resize(4);
  grouped.gates[1].deps = {0};
  grouped.gates[3].deps = {2};
  GateDag interleaved; // A1 B1 A2 B2
  interleaved.gates.resize(4);
  interleaved.gates[2].deps = {0};
  interleaved.gates[3].deps = {1};
  const auto rg = schedule_gate_dag(dfg, grouped, p.hw.pipelines);
  const auto ri = schedule_gate_dag(dfg, interleaved, p.hw.pipelines);
  EXPECT_EQ(rg.makespan, ri.makespan);
}

TEST(GateDagSchedule, MuxCostsTwoBootstraps) {
  SimParams p;
  p.tfhe = kParams;
  p.unroll_m = 1;
  const Dfg dfg = build_bootstrap_dfg(p);
  const int64_t single = schedule(dfg).makespan;
  GateDag dag;
  dag.gates.resize(1);
  dag.gates[0].bootstraps = 2;
  const auto r = schedule_gate_dag(dfg, dag, p.hw.pipelines);
  EXPECT_EQ(r.makespan, 2 * single);
}

TEST(Sim, ServiceTimesScaleWithRingSize) {
  SimParams p;
  p.tfhe = kParams;
  const int t1024 = p.transform_cycles();
  p.tfhe.ring.n_ring = 2048;
  EXPECT_GT(p.transform_cycles(), t1024);
}

} // namespace
} // namespace matcha::sim
