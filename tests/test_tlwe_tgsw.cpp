#include <gtest/gtest.h>

#include "test_util.h"

namespace matcha {
namespace {

using test::shared_keys;

template <class Engine>
typename Engine::Spectral key_spectral(const Engine& eng, const TLweKey& key) {
  typename Engine::Spectral s;
  eng.to_spectral_int(key.s, s);
  return s;
}

TEST(TLwe, EncryptPhaseRecoversMessage) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(1);
  const int n = K.params.ring.n_ring;
  TorusPolynomial mu(n);
  for (int i = 0; i < n; ++i) mu.coeffs[i] = torus_fraction(i % 8, 8);
  const auto ks = key_spectral(K.deng, K.sk.tlwe);
  const TLweSample c =
      tlwe_encrypt(K.deng, K.sk.tlwe, ks, mu, K.params.ring.sigma, rng);
  const TorusPolynomial phase = tlwe_phase(K.sk.tlwe, c);
  EXPECT_LE(max_torus_distance(phase, mu), 1e-5);
}

TEST(TLwe, HomomorphicAdd) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(2);
  const int n = K.params.ring.n_ring;
  TorusPolynomial mu1(n), mu2(n);
  for (int i = 0; i < n; ++i) {
    mu1.coeffs[i] = rng.uniform_torus() >> 4;
    mu2.coeffs[i] = rng.uniform_torus() >> 4;
  }
  const auto ks = key_spectral(K.deng, K.sk.tlwe);
  TLweSample c1 = tlwe_encrypt(K.deng, K.sk.tlwe, ks, mu1, K.params.ring.sigma, rng);
  const TLweSample c2 =
      tlwe_encrypt(K.deng, K.sk.tlwe, ks, mu2, K.params.ring.sigma, rng);
  c1 += c2;
  EXPECT_LE(max_torus_distance(tlwe_phase(K.sk.tlwe, c1), mu1 + mu2), 1e-5);
}

TEST(TLwe, SampleExtractCoefficientZero) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(3);
  const int n = K.params.ring.n_ring;
  TorusPolynomial mu(n);
  mu.coeffs[0] = torus_fraction(3, 8);
  for (int i = 1; i < n; ++i) mu.coeffs[i] = rng.uniform_torus();
  const auto ks = key_spectral(K.deng, K.sk.tlwe);
  const TLweSample c =
      tlwe_encrypt(K.deng, K.sk.tlwe, ks, mu, K.params.ring.sigma, rng);
  const LweSample ext = sample_extract(c);
  EXPECT_LE(torus_distance(lwe_phase(K.sk.extracted, ext), mu.coeffs[0]), 1e-5);
}

TEST(TLwe, ExtractedKeyMatchesRingKey) {
  const auto& K = shared_keys();
  EXPECT_EQ(static_cast<int>(K.sk.extracted.s.size()), K.params.ring.n_ring);
  for (int i = 0; i < K.params.ring.n_ring; ++i) {
    EXPECT_EQ(K.sk.extracted.s[i], K.sk.tlwe.s.coeffs[i]);
  }
}

// ---- External products -----------------------------------------------------

template <class Engine>
void external_product_message_test(const Engine& eng, double tol) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(4);
  const int n = K.params.ring.n_ring;
  const auto& g = K.params.gadget;
  const auto ks_enc = key_spectral(K.deng, K.sk.tlwe); // encrypt w/ exact engine

  for (int32_t msg : {0, 1}) {
    const TGswSample tgsw = tgsw_encrypt(K.deng, K.sk.tlwe, ks_enc, g, msg,
                                         K.params.ring.sigma, rng);
    const auto tgsw_spec = tgsw_to_spectral(eng, tgsw);
    TorusPolynomial mu(n);
    for (int i = 0; i < n; ++i) mu.coeffs[i] = torus_fraction(i % 4, 8);
    TLweSample acc = TLweSample::trivial(mu);
    ExternalProductWorkspace<Engine> ws(eng, g);
    external_product(eng, g, tgsw_spec, acc, ws);
    const TorusPolynomial phase = tlwe_phase(K.sk.tlwe, acc);
    if (msg == 0) {
      TorusPolynomial zero(n);
      EXPECT_LE(max_torus_distance(phase, zero), tol) << "msg=0";
    } else {
      EXPECT_LE(max_torus_distance(phase, mu), tol) << "msg=1";
    }
  }
}

TEST(TGsw, ExternalProductSelectsMessage_Double) {
  external_product_message_test(shared_keys().deng, 2e-4);
}

TEST(TGsw, ExternalProductSelectsMessage_Lift40) {
  external_product_message_test(shared_keys().leng, 2e-4);
}

TEST(TGsw, ExternalProductLinearInTlweOperand) {
  const auto& K = shared_keys();
  const auto& eng = K.deng;
  Rng rng = test::test_rng(5);
  const int n = K.params.ring.n_ring;
  const auto& g = K.params.gadget;
  const auto ks_enc = key_spectral(eng, K.sk.tlwe);
  const TGswSample tgsw =
      tgsw_encrypt(eng, K.sk.tlwe, ks_enc, g, 1, K.params.ring.sigma, rng);
  const auto spec = tgsw_to_spectral(eng, tgsw);

  TorusPolynomial mu(n);
  for (int i = 0; i < n; ++i) mu.coeffs[i] = torus_fraction(1, 16);
  TLweSample acc1 = TLweSample::trivial(mu);
  TLweSample acc2 = TLweSample::trivial(mu + mu);
  ExternalProductWorkspace<DoubleFftEngine> ws(eng, g);
  external_product(eng, g, spec, acc1, ws);
  external_product(eng, g, spec, acc2, ws);
  const TorusPolynomial p1 = tlwe_phase(K.sk.tlwe, acc1);
  const TorusPolynomial p2 = tlwe_phase(K.sk.tlwe, acc2);
  EXPECT_LE(max_torus_distance(p1 + p1, p2), 1e-3);
}

TEST(TGsw, GadgetRowsEncodeScaledMessages) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(6);
  const auto& g = K.params.gadget;
  const auto ks_enc = key_spectral(K.deng, K.sk.tlwe);
  const TGswSample tgsw =
      tgsw_encrypt(K.deng, K.sk.tlwe, ks_enc, g, 1, K.params.ring.sigma, rng);
  ASSERT_EQ(tgsw.rows_count(), 2 * g.l);
  // Rows l..2l-1 carry mu * Bg^{-(j+1)} in the b column: phase must equal it.
  for (int j = 0; j < g.l; ++j) {
    const TorusPolynomial phase = tlwe_phase(K.sk.tlwe, tgsw.rows[g.l + j]);
    const Torus32 expect = 1u << (32 - (j + 1) * g.bg_bits);
    EXPECT_LE(torus_distance(phase.coeffs[0], expect), 1e-5) << "row " << j;
  }
}

TEST(TGsw, CMuxViaBundleZeroAndOne) {
  // CMux(TGSW(b), d1, d0) = d_b realized as acc + (X^0...) style external
  // products -- here simply: EP(TGSW(b), d1 - d0) + d0.
  const auto& K = shared_keys();
  const auto& eng = K.deng;
  Rng rng = test::test_rng(7);
  const int n = K.params.ring.n_ring;
  const auto& g = K.params.gadget;
  const auto ks_enc = key_spectral(eng, K.sk.tlwe);
  TorusPolynomial d0(n), d1(n);
  for (int i = 0; i < n; ++i) {
    d0.coeffs[i] = torus_fraction(1, 8);
    d1.coeffs[i] = torus_fraction(3, 8);
  }
  for (int32_t b : {0, 1}) {
    const TGswSample tgsw =
        tgsw_encrypt(eng, K.sk.tlwe, ks_enc, g, b, K.params.ring.sigma, rng);
    const auto spec = tgsw_to_spectral(eng, tgsw);
    TLweSample diff = TLweSample::trivial(d1);
    diff -= TLweSample::trivial(d0);
    ExternalProductWorkspace<DoubleFftEngine> ws(eng, g);
    external_product(eng, g, spec, diff, ws);
    diff += TLweSample::trivial(d0);
    const TorusPolynomial phase = tlwe_phase(K.sk.tlwe, diff);
    EXPECT_LE(max_torus_distance(phase, b ? d1 : d0), 1e-3) << "b=" << b;
  }
}

TEST(TGsw, SpectralConversionRoundTrip) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(8);
  const auto& g = K.params.gadget;
  const auto ks_enc = key_spectral(K.deng, K.sk.tlwe);
  const TGswSample tgsw =
      tgsw_encrypt(K.deng, K.sk.tlwe, ks_enc, g, 1, K.params.ring.sigma, rng);
  const auto spec = tgsw_to_spectral(K.deng, tgsw);
  // Convert one row back and compare.
  TorusPolynomial back(K.params.ring.n_ring);
  K.deng.from_spectral_torus(spec.rows[0][0], back);
  EXPECT_EQ(back, tgsw.rows[0].a);
}

} // namespace
} // namespace matcha
