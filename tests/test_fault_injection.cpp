// Fault-injection registry semantics plus the io-layer sites. The executor
// sites (bitflip / bsk / alloc / stall) are exercised end-to-end in
// test_exec.cpp where a real batch is available; here we pin the registry
// contract itself: determinism, arming, env parsing, and that armed io sites
// surface as clean Status failures.
#include <gtest/gtest.h>

#include <sstream>

#include "common/fault_injection.h"
#include "io/serialize.h"
#include "test_util.h"

using namespace matcha;

namespace {

/// Registry state is global; every test starts and ends clean.
struct RegistryGuard {
  RegistryGuard() { fault::Registry::instance().reset(); }
  ~RegistryGuard() { fault::Registry::instance().reset(); }
};

// Tests that need a site to actually fire are meaningless when the sites
// are compiled out (-DMATCHA_FAULT_INJECTION=OFF): skip, don't fail.
#define SKIP_IF_FAULTS_COMPILED_OUT() \
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out"

TEST(FaultRegistry, InactiveByDefault) {
  RegistryGuard g;
  EXPECT_FALSE(fault::Registry::instance().active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::should_fire("test.site.a"));
  }
  // Checks against an inactive registry are not even counted (fast path).
  EXPECT_TRUE(fault::Registry::instance().stats().empty());
}

TEST(FaultRegistry, ArmFiresExactlyOnceAtTheArmedCheck) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  RegistryGuard g;
  auto& reg = fault::Registry::instance();
  reg.arm("test.site.a", /*after_checks=*/3, /*count=*/1);
  int fires = 0, fire_at = -1;
  for (int i = 0; i < 10; ++i) {
    if (fault::should_fire("test.site.a")) {
      ++fires;
      fire_at = i;
    }
  }
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fire_at, 3);
  // Other sites are untouched by the arming.
  EXPECT_FALSE(fault::should_fire("test.site.b"));
}

TEST(FaultRegistry, ArmBurstAndScopeIndependence) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  RegistryGuard g;
  auto& reg = fault::Registry::instance();
  reg.arm("test.site.a", 0, 3);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    // Arming fires regardless of the site's scope.
    if (fault::should_fire("test.site.a", fault::Scope::kArmedOnly)) ++fires;
  }
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(reg.total_fires(), 3u);
}

TEST(FaultRegistry, ChaosIsDeterministicPerSeedSiteAndCheck) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  RegistryGuard g;
  auto& reg = fault::Registry::instance();
  const int kChecks = 4000;
  const double kRate = 0.05;

  auto run = [&](uint64_t seed, const char* site) {
    reg.reset();
    reg.enable_chaos(seed, kRate);
    std::vector<bool> fired(kChecks);
    for (int i = 0; i < kChecks; ++i) fired[i] = fault::should_fire(site);
    return fired;
  };

  const auto a1 = run(42, "test.site.a");
  const auto a2 = run(42, "test.site.a");
  EXPECT_EQ(a1, a2) << "same seed+site+check must reproduce exactly";
  EXPECT_NE(a1, run(43, "test.site.a")) << "seed must matter";
  EXPECT_NE(a1, run(42, "test.site.b")) << "site name must matter";

  const auto fires =
      static_cast<int>(std::count(a1.begin(), a1.end(), true));
  // Bernoulli(0.05) over 4000 checks: mean 200, sigma ~13.8. +-6 sigma.
  EXPECT_GT(fires, 200 - 85);
  EXPECT_LT(fires, 200 + 85);
}

TEST(FaultRegistry, ChaosRespectsArmedOnlyScope) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  RegistryGuard g;
  fault::Registry::instance().enable_chaos(7, 1.0);
  // Rate 1.0 fires every kChaos check but must never touch kArmedOnly sites.
  EXPECT_TRUE(fault::should_fire("test.site.a"));
  EXPECT_FALSE(fault::should_fire("test.site.b", fault::Scope::kArmedOnly));
}

TEST(FaultRegistry, StatsCountChecksAndFires) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  RegistryGuard g;
  auto& reg = fault::Registry::instance();
  reg.arm("test.site.a", 1, 2);
  for (int i = 0; i < 5; ++i) (void)fault::should_fire("test.site.a");
  const auto stats = reg.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, "test.site.a");
  EXPECT_EQ(stats[0].checks, 5u);
  EXPECT_EQ(stats[0].fires, 2u);
}

TEST(FaultRegistry, ParseFaultsEnv) {
  auto ok = fault::parse_faults_env("42:0.01");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->first, 42u);
  EXPECT_DOUBLE_EQ(ok->second, 0.01);

  EXPECT_TRUE(fault::parse_faults_env("0xdead:1").ok());
  EXPECT_FALSE(fault::parse_faults_env("").ok());
  EXPECT_FALSE(fault::parse_faults_env("42").ok());
  EXPECT_FALSE(fault::parse_faults_env("x:0.5").ok());
  EXPECT_FALSE(fault::parse_faults_env("42:0").ok());
  EXPECT_FALSE(fault::parse_faults_env("42:1.5").ok());
  EXPECT_FALSE(fault::parse_faults_env("42:nope").ok());
}

// ------------------------------------------------------------ io sites ----

TEST(FaultIo, InjectedTruncationIsCleanDataLoss) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  RegistryGuard g;
  std::stringstream ss;
  io::write_params(ss, TfheParams::test_small());

  fault::Registry::instance().arm(fault::kSiteIoTruncate, 2);
  auto r = io::try_read_params(ss);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(FaultIo, InjectedGarbleIsCaughtByChecksum) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  RegistryGuard g;
  const TfheParams p = TfheParams::test_small();
  // Garble each raw read in turn: every single-bit corruption must surface
  // as a structured failure (checksum mismatch, bounds, or bad header),
  // never a silently-wrong object.
  for (uint64_t skip = 0; skip < 16; ++skip) {
    std::stringstream ss;
    io::write_params(ss, p);
    fault::Registry::instance().reset();
    fault::Registry::instance().arm(fault::kSiteIoGarble, skip);
    auto r = io::try_read_params(ss);
    if (fault::Registry::instance().total_fires() == 0) break; // past EOF
    ASSERT_FALSE(r.ok()) << "garbled read #" << skip << " must not decode";
  }
}

TEST(FaultIo, UnarmedSitesAreFreeOfSideEffects) {
  RegistryGuard g;
  std::stringstream ss;
  io::write_params(ss, TfheParams::test_small());
  auto r = io::try_read_params(ss);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->lwe.n, TfheParams::test_small().lwe.n);
}

} // namespace
