#include <gtest/gtest.h>

#include "circuits/word.h"
#include "test_util.h"

namespace matcha::circuits {
namespace {

using test::shared_keys;

class CircuitFixture : public ::testing::Test {
 protected:
  CircuitFixture()
      : dk_(load_device_keyset(shared_keys().deng, shared_keys().ck2)),
        ev_(dk_.make_evaluator(shared_keys().deng, shared_keys().params.mu())),
        wc_(ev_),
        rng_(test::test_rng(17)) {}

  EncWord enc(uint64_t v, int w) {
    return encrypt_word(shared_keys().sk, v, w, rng_);
  }
  uint64_t dec(const EncWord& w) { return decrypt_word(shared_keys().sk, w); }

  DeviceKeyset<DoubleFftEngine> dk_;
  GateEvaluator<DoubleFftEngine> ev_;
  WordCircuits<DoubleFftEngine> wc_;
  Rng rng_;
};

TEST_F(CircuitFixture, WordEncryptDecryptRoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 0xAAULL, 0x55ULL, 0xFFULL}) {
    EXPECT_EQ(dec(enc(v, 8)), v);
  }
}

TEST_F(CircuitFixture, AdderWithCarryOut) {
  const struct { uint64_t x, y; } cases[] = {{3, 5}, {15, 1}, {15, 15}, {0, 0}};
  for (const auto& c : cases) {
    const EncWord s = wc_.add(enc(c.x, 4), enc(c.y, 4), nullptr, true);
    EXPECT_EQ(dec(s), c.x + c.y) << c.x << "+" << c.y;
  }
}

TEST_F(CircuitFixture, Subtractor) {
  const struct { uint64_t x, y; } cases[] = {{9, 4}, {4, 9}, {7, 7}, {15, 0}};
  for (const auto& c : cases) {
    const EncWord d = wc_.sub(enc(c.x, 4), enc(c.y, 4));
    EXPECT_EQ(dec(d), (c.x - c.y) & 0xF) << c.x << "-" << c.y;
  }
}

TEST_F(CircuitFixture, Comparators) {
  const struct { uint64_t x, y; } cases[] = {{9, 4}, {4, 9}, {7, 7}, {0, 15}, {15, 14}};
  for (const auto& c : cases) {
    const EncWord ex = enc(c.x, 4), ey = enc(c.y, 4);
    EXPECT_EQ(shared_keys().sk.decrypt_bit(wc_.greater_than(ex, ey)),
              c.x > c.y ? 1 : 0)
        << c.x << ">" << c.y;
    EXPECT_EQ(shared_keys().sk.decrypt_bit(wc_.equal(ex, ey)),
              c.x == c.y ? 1 : 0)
        << c.x << "==" << c.y;
  }
}

TEST_F(CircuitFixture, WordMux) {
  const EncWord a = enc(0xA, 4), b = enc(0x5, 4);
  const LweSample sel1 = shared_keys().sk.encrypt_bit(1, rng_);
  const LweSample sel0 = shared_keys().sk.encrypt_bit(0, rng_);
  EXPECT_EQ(dec(wc_.mux(sel1, a, b)), 0xAu);
  EXPECT_EQ(dec(wc_.mux(sel0, a, b)), 0x5u);
}

TEST_F(CircuitFixture, BarrelShifter) {
  for (uint64_t amt : {0ULL, 1ULL, 2ULL, 3ULL}) {
    const EncWord r = wc_.shift_left(enc(0b0011, 4), enc(amt, 2));
    EXPECT_EQ(dec(r), (0b0011ULL << amt) & 0xF) << amt;
  }
}

TEST_F(CircuitFixture, Multiplier) {
  const struct { uint64_t x, y; } cases[] = {{3, 5}, {7, 2}, {3, 3}, {15, 15}};
  for (const auto& c : cases) {
    const EncWord p = wc_.multiply(enc(c.x, 4), enc(c.y, 4));
    EXPECT_EQ(dec(p), (c.x * c.y) & 0xF) << c.x << "*" << c.y;
  }
}

TEST_F(CircuitFixture, BitwiseOps) {
  const uint64_t x = 0b1100, y = 0b1010;
  EXPECT_EQ(dec(wc_.bit_and(enc(x, 4), enc(y, 4))), x & y);
  EXPECT_EQ(dec(wc_.bit_or(enc(x, 4), enc(y, 4))), x | y);
  EXPECT_EQ(dec(wc_.bit_xor(enc(x, 4), enc(y, 4))), x ^ y);
  EXPECT_EQ(dec(wc_.bit_not(enc(x, 4))), (~x) & 0xF);
}

TEST_F(CircuitFixture, GateBudgetTracksAdder) {
  wc_.reset_budget();
  (void)wc_.add(enc(3, 4), enc(5, 4), nullptr, false);
  // Full ripple adder: first bit 2 gates, then 5 per remaining bit = 17.
  EXPECT_EQ(wc_.budget().bootstrapped, 2 + 3 * 5);
}

TEST_F(CircuitFixture, LiftEngineAdderMatches) {
  const auto& K = shared_keys();
  const auto dkl = load_device_keyset(K.leng, K.ck2);
  auto evl = dkl.make_evaluator(K.leng, K.params.mu());
  WordCircuits<LiftFftEngine> wcl(evl);
  const EncWord s = wcl.add(enc(11, 4), enc(6, 4), nullptr, true);
  EXPECT_EQ(dec(s), 17u);
}

} // namespace
} // namespace matcha::circuits
