#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/polynomial.h"

namespace matcha {
namespace {

TorusPolynomial random_poly(Rng& rng, int n) {
  TorusPolynomial p(n);
  for (auto& c : p.coeffs) c = rng.uniform_torus();
  return p;
}

TEST(Polynomial, AddSubInverse) {
  Rng rng(1);
  const int n = 64;
  const TorusPolynomial a = random_poly(rng, n), b = random_poly(rng, n);
  TorusPolynomial c = a + b;
  c -= b;
  EXPECT_EQ(c, a);
}

class XPowerTest : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(XPowerTest, MatchesSchoolbookMonomialProduct) {
  const auto [n, k] = GetParam();
  Rng rng(2);
  const TorusPolynomial p = random_poly(rng, n);
  TorusPolynomial rot(n);
  multiply_by_xpower(rot, p, k);
  // Reference: multiply by the monomial X^(k mod 2N) via the int poly path.
  int64_t kk = k % (2 * n);
  if (kk < 0) kk += 2 * n;
  IntPolynomial mono(n);
  TorusPolynomial ref(n);
  if (kk < n) {
    mono.coeffs[kk] = 1;
    negacyclic_multiply_reference(ref, mono, p);
  } else {
    mono.coeffs[kk - n] = -1;
    negacyclic_multiply_reference(ref, mono, p);
  }
  EXPECT_EQ(rot, ref) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XPowerTest,
    ::testing::Combine(::testing::Values(8, 32, 256),
                       ::testing::Values(int64_t{0}, int64_t{1}, int64_t{5},
                                         int64_t{31}, int64_t{32}, int64_t{250},
                                         int64_t{511}, int64_t{512},
                                         int64_t{-3}, int64_t{-300})));

TEST(XPower, FullRotationIsIdentity) {
  Rng rng(3);
  const int n = 128;
  const TorusPolynomial p = random_poly(rng, n);
  TorusPolynomial r(n);
  multiply_by_xpower(r, p, 2 * n);
  EXPECT_EQ(r, p);
}

TEST(XPower, HalfRotationNegates) {
  Rng rng(4);
  const int n = 128;
  const TorusPolynomial p = random_poly(rng, n);
  TorusPolynomial r(n);
  multiply_by_xpower(r, p, n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(r.coeffs[i], static_cast<Torus32>(-p.coeffs[i]));
  }
}

TEST(XPower, Composition) {
  Rng rng(5);
  const int n = 64;
  const TorusPolynomial p = random_poly(rng, n);
  TorusPolynomial r1(n), r2(n), direct(n);
  multiply_by_xpower(r1, p, 13);
  multiply_by_xpower(r2, r1, 29);
  multiply_by_xpower(direct, p, 42);
  EXPECT_EQ(r2, direct);
}

TEST(XPowerMinusOne, MatchesDefinition) {
  Rng rng(6);
  const int n = 64;
  const TorusPolynomial p = random_poly(rng, n);
  TorusPolynomial got(n), rot(n);
  multiply_by_xpower_minus_one(got, p, 17);
  multiply_by_xpower(rot, p, 17);
  rot -= p;
  EXPECT_EQ(got, rot);
}

TEST(XPowerMinusOne, ZeroExponentGivesZero) {
  Rng rng(7);
  const int n = 64;
  const TorusPolynomial p = random_poly(rng, n);
  TorusPolynomial got(n);
  multiply_by_xpower_minus_one(got, p, 0);
  for (Torus32 c : got.coeffs) EXPECT_EQ(c, 0u);
}

TEST(Schoolbook, DistributesOverAddition) {
  Rng rng(8);
  const int n = 32;
  IntPolynomial a(n);
  for (auto& c : a.coeffs) c = static_cast<int>(rng.uniform_below(64)) - 32;
  const TorusPolynomial p = random_poly(rng, n), q = random_poly(rng, n);
  TorusPolynomial rp(n), rq(n), rsum(n);
  negacyclic_multiply_reference(rp, a, p);
  negacyclic_multiply_reference(rq, a, q);
  negacyclic_multiply_reference(rsum, a, p + q);
  EXPECT_EQ(rsum, rp + rq);
}

TEST(Schoolbook, MultiplyAddAccumulates) {
  Rng rng(9);
  const int n = 32;
  IntPolynomial a(n);
  for (auto& c : a.coeffs) c = static_cast<int>(rng.uniform_below(8)) - 4;
  const TorusPolynomial p = random_poly(rng, n);
  TorusPolynomial acc = random_poly(rng, n);
  const TorusPolynomial base = acc;
  TorusPolynomial prod(n);
  negacyclic_multiply_reference(prod, a, p);
  negacyclic_multiply_add_reference(acc, a, p);
  EXPECT_EQ(acc, base + prod);
}

TEST(Schoolbook, NegacyclicWrapSign) {
  // (X^{n-1}) * (X) = X^n = -1.
  const int n = 16;
  IntPolynomial a(n);
  a.coeffs[n - 1] = 1;
  TorusPolynomial b(n);
  b.coeffs[1] = 1000;
  TorusPolynomial r(n);
  negacyclic_multiply_reference(r, a, b);
  EXPECT_EQ(r.coeffs[0], static_cast<Torus32>(-1000));
  for (int i = 1; i < n; ++i) EXPECT_EQ(r.coeffs[i], 0u);
}

TEST(Polynomial, NormInf) {
  IntPolynomial p(4);
  p.coeffs = {3, -7, 0, 5};
  EXPECT_EQ(p.norm_inf(), 7);
}

TEST(Polynomial, MaxTorusDistance) {
  TorusPolynomial a(2), b(2);
  a.coeffs = {0, double_to_torus32(0.25)};
  b.coeffs = {double_to_torus32(0.001), double_to_torus32(0.25)};
  EXPECT_NEAR(max_torus_distance(a, b), 0.001, 1e-9);
}

} // namespace
} // namespace matcha
