// The batched gate-execution subsystem: a recorded circuit run by the
// parallel BatchExecutor must be bit-for-bit identical to sequential
// execution and to the eager GateEvaluator, and the per-thread engine
// counters must merge losslessly.
#include <gtest/gtest.h>

#include <memory>

#include "circuits/word.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "test_util.h"

namespace matcha {
namespace {

using circuits::EncWord;
using exec::BatchExecutor;
using exec::BatchResult;
using exec::CircuitBuilder;
using exec::SymWord;
using exec::SymWordCircuits;
using exec::Wire;
using test::shared_keys;

std::unique_ptr<DoubleFftEngine> make_engine() {
  return std::make_unique<DoubleFftEngine>(shared_keys().params.ring.n_ring);
}

bool same_sample(const LweSample& x, const LweSample& y) {
  return x.a == y.a && x.b == y.b;
}

/// Recorded 4-bit adder (with carry-out) + comparator over two input words.
struct AdderCmpCircuit {
  static constexpr int kWidth = 4;
  CircuitBuilder b;
  SymWord x, y, sum;
  Wire gt, eq;

  AdderCmpCircuit() {
    x = b.input_word(kWidth);
    y = b.input_word(kWidth);
    SymWordCircuits wc(b);
    sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
    gt = wc.greater_than(x, y);
    eq = wc.equal(x, y);
  }

  std::vector<LweSample> encrypt_inputs(uint64_t vx, uint64_t vy, Rng& rng) const {
    const auto& K = shared_keys();
    std::vector<LweSample> in;
    const EncWord ex = circuits::encrypt_word(K.sk, vx, kWidth, rng);
    const EncWord ey = circuits::encrypt_word(K.sk, vy, kWidth, rng);
    in.insert(in.end(), ex.bits.begin(), ex.bits.end());
    in.insert(in.end(), ey.bits.begin(), ey.bits.end());
    return in;
  }

  uint64_t decrypt_sum(const BatchResult& r) const {
    const auto& K = shared_keys();
    EncWord w;
    for (const Wire s : sum.bits) w.bits.push_back(r.at(s));
    return circuits::decrypt_word(K.sk, w);
  }
};

TEST(BatchExecutor, ParallelMatchesSequentialBitForBit) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const AdderCmpCircuit c;
  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);

  const std::pair<uint64_t, uint64_t> cases[] = {{11, 5}, {3, 14}, {9, 9}};
  for (const auto& [vx, vy] : cases) {
    Rng rng_s = test::test_rng(100 + vx);
    Rng rng_p = test::test_rng(100 + vx); // identical ciphertext inputs
    const BatchResult rs = seq.run(c.b.graph(), c.encrypt_inputs(vx, vy, rng_s));
    const BatchResult rp = par.run(c.b.graph(), c.encrypt_inputs(vx, vy, rng_p));
    ASSERT_EQ(rs.values.size(), rp.values.size());
    for (size_t i = 0; i < rs.values.size(); ++i) {
      ASSERT_TRUE(same_sample(rs.values[i], rp.values[i])) << "wire " << i;
    }
    EXPECT_EQ(c.decrypt_sum(rp), vx + vy);
    EXPECT_EQ(K.sk.decrypt_bit(rp.at(c.gt)), vx > vy ? 1 : 0);
    EXPECT_EQ(K.sk.decrypt_bit(rp.at(c.eq)), vx == vy ? 1 : 0);
  }
}

TEST(BatchExecutor, MatchesImmediateModeEvaluator) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const AdderCmpCircuit c;
  Rng rng_a = test::test_rng(7);
  Rng rng_b = test::test_rng(7);

  // Batched path.
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 3);
  const BatchResult r = ex.run(c.b.graph(), c.encrypt_inputs(13, 6, rng_a));

  // Eager path: same circuit template instantiated over the GateEvaluator.
  auto ev = dk.make_evaluator(K.deng, K.params.mu());
  circuits::WordCircuits<DoubleFftEngine> wc(ev);
  const EncWord ex_w = circuits::encrypt_word(K.sk, 13, c.kWidth, rng_b);
  const EncWord ey_w = circuits::encrypt_word(K.sk, 6, c.kWidth, rng_b);
  const EncWord sum = wc.add(ex_w, ey_w, nullptr, /*with_carry_out=*/true);
  const LweSample gt = wc.greater_than(ex_w, ey_w);
  const LweSample eq = wc.equal(ex_w, ey_w);

  ASSERT_EQ(sum.width(), c.sum.width());
  for (int i = 0; i < sum.width(); ++i) {
    EXPECT_TRUE(same_sample(sum.bits[i], r.at(c.sum.bits[i]))) << "sum bit " << i;
  }
  EXPECT_TRUE(same_sample(gt, r.at(c.gt)));
  EXPECT_TRUE(same_sample(eq, r.at(c.eq)));
}

TEST(BatchExecutor, EmptyGraph) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck1);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  exec::GateGraph g;
  const BatchResult r = ex.run(g, {});
  EXPECT_TRUE(r.values.empty());
  EXPECT_EQ(ex.last_stats().gates, 0);
  EXPECT_EQ(ex.last_stats().levels, 0);
}

TEST(BatchExecutor, EmptyBatchIsANoOp) {
  // run_batch({}) must be well-defined: no worker wakeup, no bootstrap
  // counted, an empty result -- and the executor stays usable afterwards.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck1);
  Rng rng = test::test_rng(12);
  CircuitBuilder b;
  const Wire a = b.input(), c = b.input();
  const Wire out = b.gate_and(a, c);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  const std::vector<BatchResult> empty = ex.run_batch(b.graph(), {});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(ex.last_stats().items, 0);
  EXPECT_EQ(ex.last_stats().gates, 0);
  EXPECT_EQ(ex.last_stats().bootstraps, 0);
  EXPECT_EQ(ex.counters().to_spectral_calls, 0);
  // A normal run after the no-op behaves as usual.
  const LweSample ca = K.sk.encrypt_bit(1, rng), cb = K.sk.encrypt_bit(0, rng);
  const BatchResult r = ex.run(b.graph(), {ca, cb});
  EXPECT_EQ(K.sk.decrypt_bit(r.at(out)), 0);
  EXPECT_EQ(ex.last_stats().items, 1);
}

TEST(BatchExecutor, InputsOnlyGraphPassesThrough) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck1);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  Rng rng = test::test_rng(8);
  exec::GateGraph g;
  const Wire w = g.add_input();
  const LweSample in = K.sk.encrypt_bit(1, rng);
  const BatchResult r = ex.run(g, {in});
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_TRUE(same_sample(r.at(w), in));
  EXPECT_EQ(ex.last_stats().gates, 0);
}

TEST(BatchExecutor, SingleGate) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck1);
  Rng rng = test::test_rng(9);
  CircuitBuilder b;
  const Wire a = b.input(), c = b.input();
  const Wire out = b.gate_nand(a, c);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  const LweSample ca = K.sk.encrypt_bit(1, rng), cb = K.sk.encrypt_bit(1, rng);
  const BatchResult r = ex.run(b.graph(), {ca, cb});
  EXPECT_EQ(K.sk.decrypt_bit(r.at(out)), 0);
  EXPECT_EQ(ex.last_stats().gates, 1);
  EXPECT_EQ(ex.last_stats().bootstraps, 1);
  EXPECT_EQ(ex.last_stats().levels, 1);
  // A 1-gate run is one pool dispatch with one participating worker -- the
  // dataflow dispatch never wakes workers it cannot feed.
  EXPECT_EQ(ex.last_stats().pool_dispatches, 1);
  EXPECT_EQ(ex.last_stats().workers, 1);
  EXPECT_EQ(ex.last_stats().steals, 0);

  // Bit-identical to the eager evaluator.
  auto ev = dk.make_evaluator(K.deng, K.params.mu());
  EXPECT_TRUE(same_sample(ev.gate_nand(ca, cb), r.at(out)));
}

TEST(BatchExecutor, AllGateKindsIncludingMuxAndNot) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  CircuitBuilder b;
  const Wire a = b.input(), c = b.input(), s = b.input();
  const Wire nand_w = b.gate_nand(a, c), and_w = b.gate_and(a, c);
  const Wire or_w = b.gate_or(a, c), nor_w = b.gate_nor(a, c);
  const Wire xor_w = b.gate_xor(a, c), xnor_w = b.gate_xnor(a, c);
  const Wire not_w = b.gate_not(a);
  const Wire mux_w = b.gate_mux(s, a, c);

  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  for (int va = 0; va <= 1; ++va) {
    for (int vc = 0; vc <= 1; ++vc) {
      Rng r1 = test::test_rng(20 + va * 2 + vc);
      Rng r2 = test::test_rng(20 + va * 2 + vc);
      const auto enc = [&](Rng& r) {
        return std::vector<LweSample>{K.sk.encrypt_bit(va, r),
                                      K.sk.encrypt_bit(vc, r),
                                      K.sk.encrypt_bit(1, r)};
      };
      const BatchResult rs = seq.run(b.graph(), enc(r1));
      const BatchResult rp = par.run(b.graph(), enc(r2));
      for (size_t i = 0; i < rs.values.size(); ++i) {
        ASSERT_TRUE(same_sample(rs.values[i], rp.values[i])) << "wire " << i;
      }
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(nand_w)), !(va && vc));
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(and_w)), va && vc);
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(or_w)), va || vc);
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(nor_w)), !(va || vc));
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(xor_w)), va ^ vc);
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(xnor_w)), !(va ^ vc));
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(not_w)), !va);
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(mux_w)), va); // sel=1 -> a
    }
  }
}

TEST(BatchExecutor, RunBatchMatchesIndividualRuns) {
  // The flattened (batch item x wavefront slice) task space must not let
  // items contaminate each other: a 3-item batch on 4 threads is bit-equal
  // to three independent single-item runs on 1 thread.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const AdderCmpCircuit c;
  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);

  const std::pair<uint64_t, uint64_t> cases[] = {{2, 13}, {8, 8}, {15, 1}};
  std::vector<std::vector<LweSample>> batch;
  for (size_t i = 0; i < 3; ++i) {
    Rng rng = test::test_rng(300 + i);
    batch.push_back(c.encrypt_inputs(cases[i].first, cases[i].second, rng));
  }
  const std::vector<BatchResult> rb = par.run_batch(c.b.graph(), batch);
  ASSERT_EQ(rb.size(), 3u);
  EXPECT_EQ(par.last_stats().items, 3);
  EXPECT_EQ(par.last_stats().gates, 3 * c.b.graph().num_gates());
  // Barrier-free contract: the whole 3-item batch is one pool dispatch, not
  // one per dependence level, and the scheduler-efficiency metric is sane.
  EXPECT_EQ(par.last_stats().pool_dispatches, 1);
  EXPECT_GT(par.last_stats().sched_efficiency, 0.0);
  EXPECT_LE(par.last_stats().sched_efficiency, 1.05);
  for (size_t i = 0; i < 3; ++i) {
    Rng rng = test::test_rng(300 + i);
    const BatchResult ri =
        seq.run(c.b.graph(), c.encrypt_inputs(cases[i].first, cases[i].second, rng));
    ASSERT_EQ(rb[i].values.size(), ri.values.size());
    for (size_t w = 0; w < ri.values.size(); ++w) {
      ASSERT_TRUE(same_sample(rb[i].values[w], ri.values[w]))
          << "item " << i << " wire " << w;
    }
    EXPECT_EQ(c.decrypt_sum(rb[i]), cases[i].first + cases[i].second);
  }
}

TEST(EngineCounters, PerThreadCountersMergeLosslessly) {
  // Regression for the counter race: EngineCounters used to be one shared
  // mutable struct; concurrent gates would drop increments. Per-thread
  // engines accumulate privately and the executor folds them together on
  // batch completion, so the merged call counts must match a sequential run
  // exactly, for any thread count.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const AdderCmpCircuit c;
  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  Rng rng_s = test::test_rng(11);
  Rng rng_p = test::test_rng(11);
  (void)seq.run(c.b.graph(), c.encrypt_inputs(12, 10, rng_s));
  (void)par.run(c.b.graph(), c.encrypt_inputs(12, 10, rng_p));

  const EngineCounters& cs = seq.counters();
  const EngineCounters& cp = par.counters();
  EXPECT_GT(cs.to_spectral_calls, 0);
  EXPECT_GT(cs.from_spectral_calls, 0);
  EXPECT_TRUE(cp.same_counts(cs))
      << "to_spectral " << cp.to_spectral_calls << " vs " << cs.to_spectral_calls
      << ", from_spectral " << cp.from_spectral_calls << " vs "
      << cs.from_spectral_calls;

  par.reset_counters();
  EXPECT_EQ(par.counters().to_spectral_calls, 0);
}

TEST(GateGraph, LevelizeRespectsDependencies) {
  CircuitBuilder b;
  const SymWord x = b.input_word(4), y = b.input_word(4);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, true);
  (void)sum;
  const auto& g = b.graph();
  const auto levels = g.levelize();
  ASSERT_GT(levels.size(), 1u);
  // Inputs exactly fill level 0.
  EXPECT_EQ(levels[0].size(), static_cast<size_t>(g.num_inputs()));
  // Every gate sits strictly above all of its operands.
  std::vector<int> level_of(g.num_nodes());
  for (size_t l = 0; l < levels.size(); ++l) {
    for (int id : levels[l]) level_of[id] = static_cast<int>(l);
  }
  for (int id = 0; id < g.num_nodes(); ++id) {
    const auto& n = g.nodes()[id];
    for (int j = 0; j < n.fan_in(); ++j) {
      EXPECT_LT(level_of[n.in[j]], level_of[id]);
    }
  }
  // A ripple-carry adder's budget: 5 gates per full-adder stage.
  EXPECT_EQ(g.num_gates(), 2 + 5 * 3);
}

} // namespace
} // namespace matcha
