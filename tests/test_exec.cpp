// The batched gate-execution subsystem: a recorded circuit run by the
// parallel BatchExecutor must be bit-for-bit identical to sequential
// execution and to the eager GateEvaluator, and the per-thread engine
// counters must merge losslessly.
#include <gtest/gtest.h>

#include <memory>

#include "circuits/word.h"
#include "common/fault_injection.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "test_util.h"

namespace matcha {
namespace {

using circuits::EncWord;
using exec::BatchExecutor;
using exec::BatchResult;
using exec::CircuitBuilder;
using exec::SymWord;
using exec::SymWordCircuits;
using exec::Wire;
using test::shared_keys;

std::unique_ptr<DoubleFftEngine> make_engine() {
  return std::make_unique<DoubleFftEngine>(shared_keys().params.ring.n_ring);
}

bool same_sample(const LweSample& x, const LweSample& y) {
  return x.a == y.a && x.b == y.b;
}

/// Recorded 4-bit adder (with carry-out) + comparator over two input words.
struct AdderCmpCircuit {
  static constexpr int kWidth = 4;
  CircuitBuilder b;
  SymWord x, y, sum;
  Wire gt, eq;

  AdderCmpCircuit() {
    x = b.input_word(kWidth);
    y = b.input_word(kWidth);
    SymWordCircuits wc(b);
    sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
    gt = wc.greater_than(x, y);
    eq = wc.equal(x, y);
  }

  std::vector<LweSample> encrypt_inputs(uint64_t vx, uint64_t vy, Rng& rng) const {
    const auto& K = shared_keys();
    std::vector<LweSample> in;
    const EncWord ex = circuits::encrypt_word(K.sk, vx, kWidth, rng);
    const EncWord ey = circuits::encrypt_word(K.sk, vy, kWidth, rng);
    in.insert(in.end(), ex.bits.begin(), ex.bits.end());
    in.insert(in.end(), ey.bits.begin(), ey.bits.end());
    return in;
  }

  uint64_t decrypt_sum(const BatchResult& r) const {
    const auto& K = shared_keys();
    EncWord w;
    for (const Wire s : sum.bits) w.bits.push_back(r.at(s));
    return circuits::decrypt_word(K.sk, w);
  }
};

TEST(BatchExecutor, ParallelMatchesSequentialBitForBit) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const AdderCmpCircuit c;
  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);

  const std::pair<uint64_t, uint64_t> cases[] = {{11, 5}, {3, 14}, {9, 9}};
  for (const auto& [vx, vy] : cases) {
    Rng rng_s = test::test_rng(100 + vx);
    Rng rng_p = test::test_rng(100 + vx); // identical ciphertext inputs
    const BatchResult rs = seq.run(c.b.graph(), c.encrypt_inputs(vx, vy, rng_s));
    const BatchResult rp = par.run(c.b.graph(), c.encrypt_inputs(vx, vy, rng_p));
    ASSERT_EQ(rs.values.size(), rp.values.size());
    for (size_t i = 0; i < rs.values.size(); ++i) {
      ASSERT_TRUE(same_sample(rs.values[i], rp.values[i])) << "wire " << i;
    }
    EXPECT_EQ(c.decrypt_sum(rp), vx + vy);
    EXPECT_EQ(K.sk.decrypt_bit(rp.at(c.gt)), vx > vy ? 1 : 0);
    EXPECT_EQ(K.sk.decrypt_bit(rp.at(c.eq)), vx == vy ? 1 : 0);
  }
}

TEST(BatchExecutor, MatchesImmediateModeEvaluator) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const AdderCmpCircuit c;
  Rng rng_a = test::test_rng(7);
  Rng rng_b = test::test_rng(7);

  // Batched path.
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 3);
  const BatchResult r = ex.run(c.b.graph(), c.encrypt_inputs(13, 6, rng_a));

  // Eager path: same circuit template instantiated over the GateEvaluator.
  auto ev = dk.make_evaluator(K.deng, K.params.mu());
  circuits::WordCircuits<DoubleFftEngine> wc(ev);
  const EncWord ex_w = circuits::encrypt_word(K.sk, 13, c.kWidth, rng_b);
  const EncWord ey_w = circuits::encrypt_word(K.sk, 6, c.kWidth, rng_b);
  const EncWord sum = wc.add(ex_w, ey_w, nullptr, /*with_carry_out=*/true);
  const LweSample gt = wc.greater_than(ex_w, ey_w);
  const LweSample eq = wc.equal(ex_w, ey_w);

  ASSERT_EQ(sum.width(), c.sum.width());
  for (int i = 0; i < sum.width(); ++i) {
    EXPECT_TRUE(same_sample(sum.bits[i], r.at(c.sum.bits[i]))) << "sum bit " << i;
  }
  EXPECT_TRUE(same_sample(gt, r.at(c.gt)));
  EXPECT_TRUE(same_sample(eq, r.at(c.eq)));
}

TEST(BatchExecutor, EmptyGraph) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck1);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  exec::GateGraph g;
  const BatchResult r = ex.run(g, {});
  EXPECT_TRUE(r.values.empty());
  EXPECT_EQ(ex.last_stats().gates, 0);
  EXPECT_EQ(ex.last_stats().levels, 0);
}

TEST(BatchExecutor, EmptyBatchIsANoOp) {
  // run_batch({}) must be well-defined: no worker wakeup, no bootstrap
  // counted, an empty result -- and the executor stays usable afterwards.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck1);
  Rng rng = test::test_rng(12);
  CircuitBuilder b;
  const Wire a = b.input(), c = b.input();
  const Wire out = b.gate_and(a, c);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  const std::vector<BatchResult> empty = ex.run_batch(b.graph(), {});
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(ex.last_stats().items, 0);
  EXPECT_EQ(ex.last_stats().gates, 0);
  EXPECT_EQ(ex.last_stats().bootstraps, 0);
  EXPECT_EQ(ex.counters().to_spectral_calls, 0);
  // A normal run after the no-op behaves as usual.
  const LweSample ca = K.sk.encrypt_bit(1, rng), cb = K.sk.encrypt_bit(0, rng);
  const BatchResult r = ex.run(b.graph(), {ca, cb});
  EXPECT_EQ(K.sk.decrypt_bit(r.at(out)), 0);
  EXPECT_EQ(ex.last_stats().items, 1);
}

TEST(BatchExecutor, InputsOnlyGraphPassesThrough) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck1);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  Rng rng = test::test_rng(8);
  exec::GateGraph g;
  const Wire w = g.add_input();
  const LweSample in = K.sk.encrypt_bit(1, rng);
  const BatchResult r = ex.run(g, {in});
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_TRUE(same_sample(r.at(w), in));
  EXPECT_EQ(ex.last_stats().gates, 0);
}

TEST(BatchExecutor, SingleGate) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck1);
  Rng rng = test::test_rng(9);
  CircuitBuilder b;
  const Wire a = b.input(), c = b.input();
  const Wire out = b.gate_nand(a, c);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  const LweSample ca = K.sk.encrypt_bit(1, rng), cb = K.sk.encrypt_bit(1, rng);
  const BatchResult r = ex.run(b.graph(), {ca, cb});
  EXPECT_EQ(K.sk.decrypt_bit(r.at(out)), 0);
  EXPECT_EQ(ex.last_stats().gates, 1);
  EXPECT_EQ(ex.last_stats().bootstraps, 1);
  EXPECT_EQ(ex.last_stats().levels, 1);
  // A 1-gate run is one pool dispatch with one participating worker -- the
  // dataflow dispatch never wakes workers it cannot feed.
  EXPECT_EQ(ex.last_stats().pool_dispatches, 1);
  EXPECT_EQ(ex.last_stats().workers, 1);
  EXPECT_EQ(ex.last_stats().steals, 0);

  // Bit-identical to the eager evaluator.
  auto ev = dk.make_evaluator(K.deng, K.params.mu());
  EXPECT_TRUE(same_sample(ev.gate_nand(ca, cb), r.at(out)));
}

TEST(BatchExecutor, AllGateKindsIncludingMuxAndNot) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  CircuitBuilder b;
  const Wire a = b.input(), c = b.input(), s = b.input();
  const Wire nand_w = b.gate_nand(a, c), and_w = b.gate_and(a, c);
  const Wire or_w = b.gate_or(a, c), nor_w = b.gate_nor(a, c);
  const Wire xor_w = b.gate_xor(a, c), xnor_w = b.gate_xnor(a, c);
  const Wire not_w = b.gate_not(a);
  const Wire mux_w = b.gate_mux(s, a, c);

  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  for (int va = 0; va <= 1; ++va) {
    for (int vc = 0; vc <= 1; ++vc) {
      Rng r1 = test::test_rng(20 + va * 2 + vc);
      Rng r2 = test::test_rng(20 + va * 2 + vc);
      const auto enc = [&](Rng& r) {
        return std::vector<LweSample>{K.sk.encrypt_bit(va, r),
                                      K.sk.encrypt_bit(vc, r),
                                      K.sk.encrypt_bit(1, r)};
      };
      const BatchResult rs = seq.run(b.graph(), enc(r1));
      const BatchResult rp = par.run(b.graph(), enc(r2));
      for (size_t i = 0; i < rs.values.size(); ++i) {
        ASSERT_TRUE(same_sample(rs.values[i], rp.values[i])) << "wire " << i;
      }
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(nand_w)), !(va && vc));
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(and_w)), va && vc);
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(or_w)), va || vc);
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(nor_w)), !(va || vc));
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(xor_w)), va ^ vc);
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(xnor_w)), !(va ^ vc));
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(not_w)), !va);
      EXPECT_EQ(K.sk.decrypt_bit(rp.at(mux_w)), va); // sel=1 -> a
    }
  }
}

TEST(BatchExecutor, RunBatchMatchesIndividualRuns) {
  // The flattened (batch item x wavefront slice) task space must not let
  // items contaminate each other: a 3-item batch on 4 threads is bit-equal
  // to three independent single-item runs on 1 thread.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const AdderCmpCircuit c;
  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);

  const std::pair<uint64_t, uint64_t> cases[] = {{2, 13}, {8, 8}, {15, 1}};
  std::vector<std::vector<LweSample>> batch;
  for (size_t i = 0; i < 3; ++i) {
    Rng rng = test::test_rng(300 + i);
    batch.push_back(c.encrypt_inputs(cases[i].first, cases[i].second, rng));
  }
  const std::vector<BatchResult> rb = par.run_batch(c.b.graph(), batch);
  ASSERT_EQ(rb.size(), 3u);
  EXPECT_EQ(par.last_stats().items, 3);
  EXPECT_EQ(par.last_stats().gates, 3 * c.b.graph().num_gates());
  // Barrier-free contract: the whole 3-item batch is one pool dispatch, not
  // one per dependence level, and the scheduler-efficiency metric is sane.
  EXPECT_EQ(par.last_stats().pool_dispatches, 1);
  EXPECT_GT(par.last_stats().sched_efficiency, 0.0);
  EXPECT_LE(par.last_stats().sched_efficiency, 1.05);
  for (size_t i = 0; i < 3; ++i) {
    Rng rng = test::test_rng(300 + i);
    const BatchResult ri =
        seq.run(c.b.graph(), c.encrypt_inputs(cases[i].first, cases[i].second, rng));
    ASSERT_EQ(rb[i].values.size(), ri.values.size());
    for (size_t w = 0; w < ri.values.size(); ++w) {
      ASSERT_TRUE(same_sample(rb[i].values[w], ri.values[w]))
          << "item " << i << " wire " << w;
    }
    EXPECT_EQ(c.decrypt_sum(rb[i]), cases[i].first + cases[i].second);
  }
}

TEST(EngineCounters, PerThreadCountersMergeLosslessly) {
  // Regression for the counter race: EngineCounters used to be one shared
  // mutable struct; concurrent gates would drop increments. Per-thread
  // engines accumulate privately and the executor folds them together on
  // batch completion, so the merged call counts must match a sequential run
  // exactly, for any thread count.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const AdderCmpCircuit c;
  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  Rng rng_s = test::test_rng(11);
  Rng rng_p = test::test_rng(11);
  (void)seq.run(c.b.graph(), c.encrypt_inputs(12, 10, rng_s));
  (void)par.run(c.b.graph(), c.encrypt_inputs(12, 10, rng_p));

  const EngineCounters& cs = seq.counters();
  const EngineCounters& cp = par.counters();
  EXPECT_GT(cs.to_spectral_calls, 0);
  EXPECT_GT(cs.from_spectral_calls, 0);
  EXPECT_TRUE(cp.same_counts(cs))
      << "to_spectral " << cp.to_spectral_calls << " vs " << cs.to_spectral_calls
      << ", from_spectral " << cp.from_spectral_calls << " vs "
      << cs.from_spectral_calls;

  par.reset_counters();
  EXPECT_EQ(par.counters().to_spectral_calls, 0);
}

// ------------------------------------------------------- fault isolation --
// Per-item failure containment under injected faults: a faulted item carries
// a structured Status, its batch siblings complete bit-identically to a
// clean run, and the bounded retry repairs transient faults in place.

/// Leaves the process-wide fault registry clean on both sides of a test.
struct FaultGuard {
  FaultGuard() { fault::Registry::instance().reset(); }
  ~FaultGuard() { fault::Registry::instance().reset(); }
};

// Tests that arm a site are meaningless when the sites are compiled out
// (-DMATCHA_FAULT_INJECTION=OFF): skip, don't fail.
#define SKIP_IF_FAULTS_COMPILED_OUT() \
  if (!fault::compiled_in()) GTEST_SKIP() << "fault injection compiled out"

struct FaultFixture {
  const AdderCmpCircuit c;
  std::vector<std::pair<uint64_t, uint64_t>> cases{{2, 13}, {8, 8}, {15, 1}};

  std::vector<std::vector<LweSample>> make_batch() const {
    std::vector<std::vector<LweSample>> batch;
    for (size_t i = 0; i < cases.size(); ++i) {
      Rng rng = test::test_rng(900 + i);
      batch.push_back(
          c.encrypt_inputs(cases[i].first, cases[i].second, rng));
    }
    return batch;
  }
};

TEST(FaultIsolation, TaskExceptionIsRepairedByBoundedRetry) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const FaultFixture f;
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);

  FaultGuard guard;
  const std::vector<BatchResult> clean = ex.run_batch(f.c.b.graph(), f.make_batch());

  fault::Registry::instance().arm(fault::kSiteTaskException);
  const std::vector<BatchResult> faulted = ex.run_batch(f.c.b.graph(), f.make_batch());

  EXPECT_GE(ex.last_stats().faulted_items, 1);
  EXPECT_EQ(ex.last_stats().retried_items, ex.last_stats().faulted_items);
  EXPECT_GE(ex.last_stats().retry_runs, 1);
  ASSERT_EQ(faulted.size(), clean.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_TRUE(faulted[i].status.ok()) << faulted[i].status.to_string();
    ASSERT_EQ(faulted[i].values.size(), clean[i].values.size());
    for (size_t w = 0; w < clean[i].values.size(); ++w) {
      ASSERT_TRUE(same_sample(faulted[i].values[w], clean[i].values[w]))
          << "item " << i << " wire " << w;
    }
  }
}

TEST(FaultIsolation, WithoutRetryTheFaultStaysOnItsItem) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const FaultFixture f;
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);

  FaultGuard guard;
  const std::vector<BatchResult> clean = ex.run_batch(f.c.b.graph(), f.make_batch());

  ex.set_max_retries(0);
  fault::Registry::instance().arm(fault::kSiteTaskException);
  const std::vector<BatchResult> faulted = ex.run_batch(f.c.b.graph(), f.make_batch());

  ASSERT_EQ(faulted.size(), clean.size());
  int bad = 0;
  for (size_t i = 0; i < faulted.size(); ++i) {
    if (!faulted[i].status.ok()) {
      ++bad;
      // The faulted item's downstream cone is invalidated, and reading an
      // invalidated wire surfaces the structured Status, not stale bytes.
      size_t invalid_gates = 0;
      for (size_t w = 0; w < faulted[i].value_ok.size(); ++w) {
        if (f.c.b.graph().nodes()[w].is_gate() && !faulted[i].value_ok[w]) {
          ++invalid_gates;
          EXPECT_THROW((void)faulted[i].at(Wire{static_cast<int>(w)}),
                       StatusError);
        }
      }
      EXPECT_GE(invalid_gates, 1u);
    } else {
      // Siblings of the faulted item are bit-identical to the clean run.
      for (size_t w = 0; w < clean[i].values.size(); ++w) {
        ASSERT_TRUE(same_sample(faulted[i].values[w], clean[i].values[w]))
            << "item " << i << " wire " << w;
      }
      EXPECT_EQ(f.c.decrypt_sum(faulted[i]),
                f.cases[i].first + f.cases[i].second);
    }
  }
  EXPECT_GE(bad, 1);
  EXPECT_EQ(ex.last_stats().faulted_items, bad);
  EXPECT_EQ(ex.last_stats().retried_items, 0);
}

TEST(FaultIsolation, DataPathFaultSitesAreRepairedInPlace) {
  SKIP_IF_FAULTS_COMPILED_OUT();
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const FaultFixture f;
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);

  FaultGuard guard;
  const std::vector<BatchResult> clean = ex.run_batch(f.c.b.graph(), f.make_batch());

  for (const char* site : {fault::kSiteArenaAllocFail,
                           fault::kSiteBskRowCorrupt,
                           fault::kSiteKeyswitchBitflip}) {
    fault::Registry::instance().reset();
    fault::Registry::instance().arm(site);
    const std::vector<BatchResult> faulted =
        ex.run_batch(f.c.b.graph(), f.make_batch());
    EXPECT_GE(ex.last_stats().faulted_items, 1) << site;
    ASSERT_EQ(faulted.size(), clean.size());
    for (size_t i = 0; i < clean.size(); ++i) {
      EXPECT_TRUE(faulted[i].status.ok())
          << site << ": " << faulted[i].status.to_string();
      for (size_t w = 0; w < clean[i].values.size(); ++w) {
        ASSERT_TRUE(same_sample(faulted[i].values[w], clean[i].values[w]))
            << site << " item " << i << " wire " << w;
      }
    }
  }
}

TEST(FaultIsolation, DeadlineTripsAsStructuredTimeout) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const FaultFixture f;
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);

  FaultGuard guard;
  ex.set_deadline(std::chrono::milliseconds(1));
  const std::vector<BatchResult> r = ex.run_batch(f.c.b.graph(), f.make_batch());
  EXPECT_TRUE(ex.last_stats().timed_out);
  int timed_out_items = 0;
  for (const BatchResult& item : r) {
    if (!item.status.ok()) {
      EXPECT_EQ(item.status.code(), StatusCode::kDeadlineExceeded)
          << item.status.to_string();
      ++timed_out_items;
    }
  }
  EXPECT_GE(timed_out_items, 1);
}

TEST(FaultIsolation, ChaosNeverReportsAWrongAnswerAsSuccess) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const FaultFixture f;
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);

  FaultGuard guard;
  fault::Registry::instance().enable_chaos(/*seed=*/20260807, /*rate=*/0.02);
  const std::vector<BatchResult> r = ex.run_batch(f.c.b.graph(), f.make_batch());
  ASSERT_EQ(r.size(), f.cases.size());
  for (size_t i = 0; i < r.size(); ++i) {
    if (r[i].status.ok()) {
      EXPECT_EQ(f.c.decrypt_sum(r[i]), f.cases[i].first + f.cases[i].second)
          << "item " << i << " reported success with a wrong plaintext";
    }
    // A non-OK item is acceptable under chaos -- the contract is a
    // structured per-item Status, never a crash, hang, or silent corruption.
  }
}

TEST(GateGraph, RejectsMalformedPayloadsWithStructuredErrors) {
  exec::GateGraph g;
  const Wire a = g.add_input();
  const Wire b = g.add_input();

  // Unknown operand wires, wrong construction entry points, and out-of-spec
  // LutSpec payloads all fail with a structured throw in release builds.
  EXPECT_THROW(g.add_gate(GateKind::kAnd, a, Wire{99}), StatusError);
  EXPECT_THROW(g.add_gate(GateKind::kLut, a, b), StatusError);
  EXPECT_THROW(g.add_gate(GateKind::kLutOut, a), StatusError);
  EXPECT_THROW(g.mark_output(Wire{99}), StatusError);
  EXPECT_THROW(g.add_lut_output(a, 1), StatusError);

  LutSpec bad;
  bad.k = 2;
  bad.w = {1, 0, 0, 0}; // zero weight inside the fan-in
  const std::array<Wire, 2> ins{a, b};
  EXPECT_THROW(g.add_lut(std::span<const Wire>(ins), bad), StatusError);
  EXPECT_EQ(validate_lut_spec(bad).code(), StatusCode::kInvalidArgument);

  LutSpec xor2 = *solve_lut_cone(2, 0b0110);
  EXPECT_TRUE(validate_lut_spec(xor2).ok());
  xor2.grid_log = 7; // outside the representable grid range
  EXPECT_FALSE(validate_lut_spec(xor2).ok());

  // The graph is still usable after rejected additions.
  const Wire ok = g.add_gate(GateKind::kAnd, a, b);
  g.mark_output(ok);
  EXPECT_EQ(g.num_gates(), 1);
}

TEST(GateGraph, LevelizeRespectsDependencies) {
  CircuitBuilder b;
  const SymWord x = b.input_word(4), y = b.input_word(4);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, true);
  (void)sum;
  const auto& g = b.graph();
  const auto levels = g.levelize();
  ASSERT_GT(levels.size(), 1u);
  // Inputs exactly fill level 0.
  EXPECT_EQ(levels[0].size(), static_cast<size_t>(g.num_inputs()));
  // Every gate sits strictly above all of its operands.
  std::vector<int> level_of(g.num_nodes());
  for (size_t l = 0; l < levels.size(); ++l) {
    for (int id : levels[l]) level_of[id] = static_cast<int>(l);
  }
  for (int id = 0; id < g.num_nodes(); ++id) {
    const auto& n = g.nodes()[id];
    for (int j = 0; j < n.fan_in(); ++j) {
      EXPECT_LT(level_of[n.in[j]], level_of[id]);
    }
  }
  // A ripple-carry adder's budget: 5 gates per full-adder stage.
  EXPECT_EQ(g.num_gates(), 2 + 5 * 3);
}

} // namespace
} // namespace matcha
