#include <gtest/gtest.h>

#include <set>
#include <string>

#include "test_util.h"

namespace matcha {
namespace {

using test::shared_keys;

enum class Eng { kDouble, kLift };

struct GateCase {
  Eng eng;
  int unroll_m;
  BlindRotateMode mode;
};

class GateTruthTables : public ::testing::TestWithParam<GateCase> {
 protected:
  template <class F>
  void run(F&& body) {
    const auto& K = shared_keys();
    const auto& [eng_kind, m, mode] = GetParam();
    const CloudKeyset& ck = m == 1 ? K.ck1 : (m == 2 ? K.ck2 : K.ck3);
    if (eng_kind == Eng::kDouble) {
      const auto dk = load_device_keyset(K.deng, ck);
      auto ev = dk.make_evaluator(K.deng, K.params.mu(), mode);
      body(ev);
    } else {
      const auto dk = load_device_keyset(K.leng, ck);
      auto ev = dk.make_evaluator(K.leng, K.params.mu(), mode);
      body(ev);
    }
  }
};

TEST_P(GateTruthTables, AllBinaryGates) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(1);
  run([&](auto& ev) {
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        const LweSample ca = K.sk.encrypt_bit(a, rng);
        const LweSample cb = K.sk.encrypt_bit(b, rng);
        EXPECT_EQ(K.sk.decrypt_bit(ev.gate_nand(ca, cb)), !(a && b))
            << "NAND " << a << b;
        EXPECT_EQ(K.sk.decrypt_bit(ev.gate_and(ca, cb)), a && b)
            << "AND " << a << b;
        EXPECT_EQ(K.sk.decrypt_bit(ev.gate_or(ca, cb)), a || b)
            << "OR " << a << b;
        EXPECT_EQ(K.sk.decrypt_bit(ev.gate_nor(ca, cb)), !(a || b))
            << "NOR " << a << b;
        EXPECT_EQ(K.sk.decrypt_bit(ev.gate_xor(ca, cb)), a ^ b)
            << "XOR " << a << b;
        EXPECT_EQ(K.sk.decrypt_bit(ev.gate_xnor(ca, cb)), !(a ^ b))
            << "XNOR " << a << b;
      }
    }
  });
}

TEST_P(GateTruthTables, NotAndMux) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(2);
  run([&](auto& ev) {
    for (int a = 0; a <= 1; ++a) {
      const LweSample ca = K.sk.encrypt_bit(a, rng);
      EXPECT_EQ(K.sk.decrypt_bit(ev.gate_not(ca)), !a);
    }
    for (int s = 0; s <= 1; ++s) {
      for (int x = 0; x <= 1; ++x) {
        for (int y = 0; y <= 1; ++y) {
          const LweSample cs = K.sk.encrypt_bit(s, rng);
          const LweSample cx = K.sk.encrypt_bit(x, rng);
          const LweSample cy = K.sk.encrypt_bit(y, rng);
          EXPECT_EQ(K.sk.decrypt_bit(ev.gate_mux(cs, cx, cy)), s ? x : y)
              << s << x << y;
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GateTruthTables,
    ::testing::Values(GateCase{Eng::kDouble, 1, BlindRotateMode::kClassicCMux},
                      GateCase{Eng::kDouble, 1, BlindRotateMode::kBundle},
                      GateCase{Eng::kDouble, 2, BlindRotateMode::kBundle},
                      GateCase{Eng::kDouble, 3, BlindRotateMode::kBundle},
                      GateCase{Eng::kLift, 1, BlindRotateMode::kBundle},
                      GateCase{Eng::kLift, 2, BlindRotateMode::kBundle},
                      GateCase{Eng::kLift, 3, BlindRotateMode::kBundle}),
    [](const auto& info) {
      const auto& c = info.param;
      std::string s = c.eng == Eng::kDouble ? "double" : "lift40";
      s += "_m" + std::to_string(c.unroll_m);
      s += c.mode == BlindRotateMode::kBundle ? "_bundle" : "_classic";
      return s;
    });

TEST(GateChains, LongRandomCircuitStaysCorrect) {
  // 60 random two-input gates chained: the per-gate bootstrapping must keep
  // noise bounded indefinitely (TFHE's unlimited-depth claim).
  const auto& K = shared_keys();
  Rng rng = test::test_rng(3);
  const auto dk = load_device_keyset(K.deng, K.ck2.bk.unroll_m == 2 ? K.ck2 : K.ck2);
  auto ev = dk.make_evaluator(K.deng, K.params.mu());
  int plain = 1;
  LweSample enc = K.sk.encrypt_bit(plain, rng);
  for (int i = 0; i < 60; ++i) {
    const int other = rng.uniform_bit();
    const LweSample cother = K.sk.encrypt_bit(other, rng);
    switch (rng.uniform_below(4)) {
      case 0: plain = !(plain && other); enc = ev.gate_nand(enc, cother); break;
      case 1: plain = plain ^ other; enc = ev.gate_xor(enc, cother); break;
      case 2: plain = plain || other; enc = ev.gate_or(enc, cother); break;
      default: plain = plain && other; enc = ev.gate_and(enc, cother); break;
    }
    ASSERT_EQ(K.sk.decrypt_bit(enc), plain) << "gate " << i;
  }
}

TEST(GateStats, BreakdownAccountsForTotal) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(4);
  const auto dk = load_device_keyset(K.deng, K.ck1);
  auto ev = dk.make_evaluator(K.deng, K.params.mu());
  const LweSample a = K.sk.encrypt_bit(1, rng), b = K.sk.encrypt_bit(1, rng);
  (void)ev.gate_nand(a, b);
  (void)ev.gate_nand(a, b);
  const auto& bd = ev.breakdown(GateKind::kNand);
  EXPECT_EQ(bd.gates, 2);
  EXPECT_GT(bd.total_ns, 0);
  EXPECT_GT(bd.ifft_ns, 0);
  EXPECT_GT(bd.fft_ns, 0);
  EXPECT_NEAR(static_cast<double>(bd.linear_ns + bd.ifft_ns + bd.fft_ns +
                                  bd.other_ns),
              static_cast<double>(bd.total_ns), bd.total_ns * 0.01);
  // The bootstrapping (everything but the linear part) dominates: Fig. 1.
  EXPECT_GT(bd.ifft_ns + bd.fft_ns + bd.other_ns, bd.total_ns * 9 / 10);
}

TEST(GateStats, NotGateHasNoBootstrap) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(5);
  const auto dk = load_device_keyset(K.deng, K.ck1);
  auto ev = dk.make_evaluator(K.deng, K.params.mu());
  const LweSample a = K.sk.encrypt_bit(1, rng);
  (void)ev.gate_not(a);
  const auto& bd = ev.breakdown(GateKind::kNot);
  EXPECT_EQ(bd.ifft_ns, 0);
  EXPECT_EQ(bd.fft_ns, 0);
  const auto& nand_bd = ev.breakdown(GateKind::kNand);
  EXPECT_EQ(nand_bd.gates, 0);
}

TEST(GateNames, AllDistinct) {
  std::set<std::string> names;
  for (GateKind k : {GateKind::kNand, GateKind::kAnd, GateKind::kOr,
                     GateKind::kNor, GateKind::kXor, GateKind::kXnor,
                     GateKind::kNot, GateKind::kMux}) {
    names.insert(gate_name(k));
  }
  EXPECT_EQ(names.size(), 8u);
}

} // namespace
} // namespace matcha
