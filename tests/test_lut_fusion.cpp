// Functional-bootstrap LUT nodes and the optimizer's cone-fusion pass.
// Three layers of guarantees:
//   1. the LutSpec solver only ever emits specs whose phase embedding is
//      consistent with the truth table (tfhe/lut.h legality rules);
//   2. a recorded LUT node executes, under encryption, to exactly its truth
//      table -- including chained LUT -> LUT evaluation (fresh noise);
//   3. fused CompiledGraphs decrypt bit-identically to their unfused
//      Boolean-cone counterparts while spending strictly fewer bootstraps.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "circuits/word.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "exec/sim_bridge.h"
#include "tfhe/functional.h"
#include "tfhe/lut.h"
#include "test_util.h"

namespace matcha {
namespace {

using circuits::EncWord;
using exec::BatchExecutor;
using exec::BatchResult;
using exec::CircuitBuilder;
using exec::CompiledGraph;
using exec::GateGraph;
using exec::OptimizeOptions;
using exec::SymWord;
using exec::SymWordCircuits;
using exec::Wire;
using test::shared_keys;

std::unique_ptr<DoubleFftEngine> make_engine() {
  return std::make_unique<DoubleFftEngine>(shared_keys().params.ring.n_ring);
}

/// Independent re-check of the solver's contract: every input combination's
/// cell must decode, through the spec's slot values, to the table's output.
void expect_spec_consistent(const LutSpec& spec) {
  const Torus32 mu = torus_fraction(1, 8);
  const auto slots = lut_slot_values(spec, mu);
  for (unsigned b = 0; b < (1u << spec.k); ++b) {
    int s = 0;
    for (int i = 0; i < spec.k; ++i) {
      s += (b >> i) & 1u ? spec.w[static_cast<size_t>(i)]
                         : -spec.w[static_cast<size_t>(i)];
    }
    int slot = 0, sign = 0;
    lut_cell(s, slot, sign);
    const Torus32 out =
        sign > 0 ? slots[static_cast<size_t>(slot)]
                 : static_cast<Torus32>(-slots[static_cast<size_t>(slot)]);
    const Torus32 want = lut_eval(spec.table, b) ? mu : static_cast<Torus32>(-mu);
    EXPECT_EQ(out, want) << "table=0x" << std::hex << spec.table << " b=" << b;
  }
}

/// Truth table of a k-input helper function.
template <class F>
uint16_t table_of(int k, F f) {
  uint16_t t = 0;
  for (unsigned b = 0; b < (1u << k); ++b) {
    if (f(b)) t |= static_cast<uint16_t>(1u << b);
  }
  return t;
}

TEST(LutSolver, AllTwoInputGatesRealizable) {
  // Every non-constant 2-input function must embed -- TFHE already evaluates
  // each of them in one bootstrap. The two constant tables have no embedding
  // (antipodal cells force opposite outputs somewhere); they are constant
  // folding's job, never a bootstrap's.
  for (unsigned table = 0; table < 16; ++table) {
    const auto spec = solve_lut_cone(2, static_cast<uint16_t>(table));
    if (table == 0x0 || table == 0xF) {
      EXPECT_FALSE(spec.has_value()) << "constant table " << table;
      continue;
    }
    ASSERT_TRUE(spec.has_value()) << "table " << table;
    expect_spec_consistent(*spec);
  }
}

TEST(LutSolver, KnownAdderConesRealizable) {
  // The cones the fusion pass lives on: full-adder carry (MAJ3), full-adder
  // sum (XOR3), and the multiplier's partial-product-absorbing XOR.
  const uint16_t maj3 = table_of(3, [](unsigned b) {
    return __builtin_popcount(b) >= 2;
  });
  const uint16_t xor3 = table_of(3, [](unsigned b) {
    return (__builtin_popcount(b) & 1) != 0;
  });
  const uint16_t xor_and = table_of(3, [](unsigned b) {
    return ((b & 1) != 0) != (((b >> 1) & 1) != 0 && ((b >> 2) & 1) != 0);
  });
  for (const uint16_t t : {maj3, xor3, xor_and}) {
    const auto spec = solve_lut_cone(3, t);
    ASSERT_TRUE(spec.has_value()) << "table 0x" << std::hex << t;
    expect_spec_consistent(*spec);
    int norm = 0;
    for (const int8_t w : spec->w) norm += w * w;
    EXPECT_LE(norm, kLutMaxWeightNorm);
  }
}

TEST(LutSolver, EverySolvedTableIsConsistentExhaustively) {
  // Whatever subset of the 256 three-input tables the solver accepts, each
  // accepted spec must verify; rejects are fine (AND3-like tables have no
  // embedding at mu = 1/8).
  int solved = 0;
  for (unsigned table = 0; table < 256; ++table) {
    const auto spec = solve_lut_cone(3, static_cast<uint16_t>(table));
    if (!spec) continue;
    ++solved;
    expect_spec_consistent(*spec);
  }
  // At least the symmetric workhorses must be in the accepted set.
  EXPECT_GT(solved, 16);
}

TEST(LutExec, RecordedLutMatchesTableUnderEncryption) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const uint16_t maj3 = table_of(3, [](unsigned b) {
    return __builtin_popcount(b) >= 2;
  });
  const uint16_t xor3 = table_of(3, [](unsigned b) {
    return (__builtin_popcount(b) & 1) != 0;
  });
  for (const uint16_t table : {maj3, xor3}) {
    CircuitBuilder b;
    const Wire x = b.input(), y = b.input(), z = b.input();
    const Wire out = b.gate_lut({x, y, z}, table);
    b.mark_output(out);
    BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks,
                                      K.params.mu(), 2);
    Rng rng = test::test_rng(91);
    for (unsigned bits = 0; bits < 8; ++bits) {
      std::vector<LweSample> in;
      for (int i = 0; i < 3; ++i) {
        in.push_back(lwe_encrypt_bit(K.sk.lwe, (bits >> i) & 1, K.params.mu(),
                                     K.params.lwe.sigma, rng));
      }
      const BatchResult r = ex.run(b.graph(), std::move(in));
      EXPECT_EQ(K.sk.decrypt_bit(r.at(out)), lut_eval(table, bits) ? 1 : 0)
          << "table 0x" << std::hex << table << " bits " << bits;
    }
  }
}

TEST(LutExec, ChainedLutsRefreshNoise) {
  // LUT -> LUT chaining: each functional bootstrap outputs a fresh-noise
  // +-mu ciphertext, so a fused graph can stack LUT levels like gates.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const uint16_t maj3 = table_of(3, [](unsigned b) {
    return __builtin_popcount(b) >= 2;
  });
  const uint16_t xor3 = table_of(3, [](unsigned b) {
    return (__builtin_popcount(b) & 1) != 0;
  });
  CircuitBuilder b;
  const Wire x = b.input(), y = b.input(), z = b.input(), w = b.input();
  const Wire m = b.gate_lut({x, y, z}, maj3);
  const Wire out = b.gate_lut({m, z, w}, xor3);
  b.mark_output(out);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  Rng rng = test::test_rng(92);
  for (unsigned bits = 0; bits < 16; ++bits) {
    std::vector<LweSample> in;
    for (int i = 0; i < 4; ++i) {
      in.push_back(lwe_encrypt_bit(K.sk.lwe, (bits >> i) & 1, K.params.mu(),
                                   K.params.lwe.sigma, rng));
    }
    const BatchResult r = ex.run(b.graph(), std::move(in));
    const int maj = __builtin_popcount(bits & 7u) >= 2 ? 1 : 0;
    const int want = maj ^ ((bits >> 2) & 1) ^ ((bits >> 3) & 1);
    EXPECT_EQ(K.sk.decrypt_bit(r.at(out)), want) << "bits " << bits;
  }
}

TEST(Fusion, AdderConesCollapse) {
  // A ripple-carry adder is the canonical fusion target: per full-adder bit,
  // sum (XOR3) and carry (MAJ3) each become one LUT, retiring the two-XOR /
  // AND-AND-OR cones.
  CircuitBuilder b;
  const SymWord x = b.input_word(8), y = b.input_word(8);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
  b.mark_output(sum);

  OptimizeOptions no_fuse;
  no_fuse.fuse_lut_cones = false;
  const CompiledGraph unfused = b.compile(no_fuse);
  const CompiledGraph fused = b.compile();

  EXPECT_GT(fused.stats.cones_fused, 0);
  EXPECT_GT(fused.stats.fused_away, 0);
  EXPECT_LT(fused.stats.bootstraps_after, unfused.stats.bootstraps_after);
  // The headline claim: >= 40% fewer bootstraps on a pure adder.
  EXPECT_LE(fused.stats.bootstraps_after * 10,
            unfused.stats.bootstraps_after * 6);
  for (const auto& n : fused.graph.nodes()) {
    if (n.is_gate() && n.kind == GateKind::kLut) {
      EXPECT_GE(n.lut.k, 1);
      EXPECT_LE(n.lut.k, kLutMaxFanIn);
      expect_spec_consistent(n.lut);
    }
  }
  // Wavefronts still cover exactly the surviving gates; the sim bridge sees
  // each LUT as one bootstrap.
  size_t covered = 0;
  for (const auto& f : fused.graph.wavefronts()) covered += f.size();
  EXPECT_EQ(covered, static_cast<size_t>(fused.graph.num_gates()));
  const sim::GateDag dag = exec::to_gate_dag(fused.graph);
  EXPECT_EQ(dag.total_bootstraps(), fused.graph.bootstrap_count());
}

TEST(Fusion, FusedBundleDecryptsIdenticallyToUnfused) {
  // 4-bit adder + comparator + multiplier bundle: the fused graph must
  // produce the same plaintexts as the unfused one on every output, across a
  // batch, and bit-identically across thread counts.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  constexpr int kW = 4;

  CircuitBuilder b;
  const SymWord x = b.input_word(kW), y = b.input_word(kW);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
  const SymWord prod = wc.multiply(x, y);
  const Wire gt = wc.greater_than(x, y);
  const Wire eq = wc.equal(x, y);
  b.mark_output(sum);
  b.mark_output(prod);
  b.mark_output(gt);
  b.mark_output(eq);

  OptimizeOptions no_fuse;
  no_fuse.fuse_lut_cones = false;
  const CompiledGraph unfused = b.compile(no_fuse);
  const CompiledGraph fused = b.compile();
  ASSERT_GT(fused.stats.cones_fused, 0);
  EXPECT_LT(fused.stats.bootstraps_after, unfused.stats.bootstraps_after);

  BatchExecutor<DoubleFftEngine> ex1(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> ex4(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);

  Rng value_rng = test::test_rng(55);
  for (int round = 0; round < 3; ++round) {
    const uint64_t vx = value_rng.uniform_below(1u << kW);
    const uint64_t vy = value_rng.uniform_below(1u << kW);
    Rng r1 = test::test_rng(700 + round), r2 = test::test_rng(700 + round);
    const auto enc_inputs = [&](Rng& rng) {
      std::vector<LweSample> in;
      for (const uint64_t v : {vx, vy}) {
        const EncWord e = circuits::encrypt_word(K.sk, v, kW, rng);
        in.insert(in.end(), e.bits.begin(), e.bits.end());
      }
      return in;
    };
    const BatchResult rf = ex4.run(fused.graph, enc_inputs(r1));
    const BatchResult rs = ex1.run(fused.graph, enc_inputs(r2));
    // Thread-count determinism holds for LUT nodes too.
    ASSERT_EQ(rf.values.size(), rs.values.size());
    for (size_t i = 0; i < rf.values.size(); ++i) {
      ASSERT_TRUE(rf.values[i].a == rs.values[i].a && rf.values[i].b == rs.values[i].b)
          << "wire " << i;
    }
    Rng r3 = test::test_rng(700 + round);
    const BatchResult ru = ex4.run(unfused.graph, enc_inputs(r3));

    const auto word_bits = [&](const CompiledGraph& c, const BatchResult& r,
                               const SymWord& w) {
      EncWord e;
      for (const Wire bit : w.bits) e.bits.push_back(r.at(c.remap(bit)));
      return circuits::decrypt_word(K.sk, e);
    };
    const uint64_t want_sum = vx + vy;
    const uint64_t want_prod = (vx * vy) & 0xF;
    EXPECT_EQ(word_bits(fused, rf, sum), want_sum);
    EXPECT_EQ(word_bits(unfused, ru, sum), want_sum);
    EXPECT_EQ(word_bits(fused, rf, prod), want_prod);
    EXPECT_EQ(word_bits(unfused, ru, prod), want_prod);
    EXPECT_EQ(K.sk.decrypt_bit(rf.at(fused.remap(gt))), vx > vy ? 1 : 0);
    EXPECT_EQ(K.sk.decrypt_bit(ru.at(unfused.remap(gt))), vx > vy ? 1 : 0);
    EXPECT_EQ(K.sk.decrypt_bit(rf.at(fused.remap(eq))), vx == vy ? 1 : 0);
    EXPECT_EQ(K.sk.decrypt_bit(ru.at(unfused.remap(eq))), vx == vy ? 1 : 0);
  }
}

TEST(Fusion, BitPreservingModeLeavesConesAlone) {
  CircuitBuilder b;
  const SymWord x = b.input_word(4), y = b.input_word(4);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/false);
  b.mark_output(sum);
  const CompiledGraph c = b.compile(OptimizeOptions::bit_preserving());
  EXPECT_EQ(c.stats.cones_fused, 0);
  for (const auto& n : c.graph.nodes()) {
    EXPECT_NE(n.kind, GateKind::kLut);
  }
}

} // namespace
} // namespace matcha
