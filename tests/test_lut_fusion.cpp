// Functional-bootstrap LUT nodes and the optimizer's cone-fusion pass.
// Three layers of guarantees:
//   1. the LutSpec solver only ever emits specs whose phase embedding is
//      consistent with the truth table (tfhe/lut.h legality rules);
//   2. a recorded LUT node executes, under encryption, to exactly its truth
//      table -- including chained LUT -> LUT evaluation (fresh noise);
//   3. fused CompiledGraphs decrypt bit-identically to their unfused
//      Boolean-cone counterparts while spending strictly fewer bootstraps.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "circuits/word.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "exec/sim_bridge.h"
#include "fft/simd_fft.h"
#include "tfhe/functional.h"
#include "tfhe/lut.h"
#include "test_util.h"

namespace matcha {
namespace {

using circuits::EncWord;
using exec::BatchExecutor;
using exec::BatchResult;
using exec::CircuitBuilder;
using exec::CompiledGraph;
using exec::GateGraph;
using exec::OptimizeOptions;
using exec::SymWord;
using exec::SymWordCircuits;
using exec::Wire;
using test::shared_keys;

std::unique_ptr<DoubleFftEngine> make_engine() {
  return std::make_unique<DoubleFftEngine>(shared_keys().params.ring.n_ring);
}

/// Independent re-check of the solver's contract: every reachable input
/// combination's cell must decode, through the spec's slot values, to every
/// output's table bit at that output's amplitude (generalized grid: steps
/// scale by 2^(grid - amp), secondary outputs read `slot_shift` slots along).
void expect_spec_consistent(const LutSpec& spec) {
  const auto slots = lut_slot_values(spec);
  ASSERT_EQ(slots.size(), static_cast<size_t>(spec.slots()));
  for (unsigned b = 0; b < (1u << spec.k); ++b) {
    if ((spec.dc_mask >> b) & 1u) continue;
    int s = 0;
    for (int i = 0; i < spec.k; ++i) {
      s += (b >> i) & 1u ? spec.step(i) : -spec.step(i);
    }
    for (int j = 0; j < spec.n_out; ++j) {
      const LutOutput o = spec.output(j);
      ASSERT_GE(o.slot_shift, 0);
      ASSERT_LT(o.slot_shift, spec.slots()); // extraction stays below ring N
      int slot = 0, sign = 0;
      lut_cell_on_grid(s + o.slot_shift, spec.grid_log, slot, sign);
      const Torus32 amp = torus_fraction(1, int64_t{1} << o.amp_log);
      const Torus32 out =
          sign > 0 ? slots[static_cast<size_t>(slot)]
                   : static_cast<Torus32>(-slots[static_cast<size_t>(slot)]);
      const Torus32 want =
          lut_eval(o.table, b) ? amp : static_cast<Torus32>(-amp);
      EXPECT_EQ(out, want) << "table=0x" << std::hex << o.table << std::dec
                           << " out=" << j << " b=" << b;
    }
  }
}

/// Truth table of a k-input helper function.
template <class F>
uint16_t table_of(int k, F f) {
  uint16_t t = 0;
  for (unsigned b = 0; b < (1u << k); ++b) {
    if (f(b)) t |= static_cast<uint16_t>(1u << b);
  }
  return t;
}

TEST(LutSolver, AllTwoInputGatesRealizable) {
  // Every non-constant 2-input function must embed -- TFHE already evaluates
  // each of them in one bootstrap. The two constant tables have no embedding
  // (antipodal cells force opposite outputs somewhere); they are constant
  // folding's job, never a bootstrap's.
  for (unsigned table = 0; table < 16; ++table) {
    const auto spec = solve_lut_cone(2, static_cast<uint16_t>(table));
    if (table == 0x0 || table == 0xF) {
      EXPECT_FALSE(spec.has_value()) << "constant table " << table;
      continue;
    }
    ASSERT_TRUE(spec.has_value()) << "table " << table;
    expect_spec_consistent(*spec);
  }
}

TEST(LutSolver, KnownAdderConesRealizable) {
  // The cones the fusion pass lives on: full-adder carry (MAJ3), full-adder
  // sum (XOR3), and the multiplier's partial-product-absorbing XOR.
  const uint16_t maj3 = table_of(3, [](unsigned b) {
    return __builtin_popcount(b) >= 2;
  });
  const uint16_t xor3 = table_of(3, [](unsigned b) {
    return (__builtin_popcount(b) & 1) != 0;
  });
  const uint16_t xor_and = table_of(3, [](unsigned b) {
    return ((b & 1) != 0) != (((b >> 1) & 1) != 0 && ((b >> 2) & 1) != 0);
  });
  for (const uint16_t t : {maj3, xor3, xor_and}) {
    const auto spec = solve_lut_cone(3, t);
    ASSERT_TRUE(spec.has_value()) << "table 0x" << std::hex << t;
    expect_spec_consistent(*spec);
    int norm = 0;
    for (const int8_t w : spec->w) norm += w * w;
    EXPECT_LE(norm, kLutMaxWeightNorm);
  }
}

TEST(LutSolver, EverySolvedTableIsConsistentExhaustively) {
  // Whatever subset of the 256 three-input tables the solver accepts, each
  // accepted spec must verify; rejects are fine (AND3-like tables have no
  // embedding at mu = 1/8).
  int solved = 0;
  for (unsigned table = 0; table < 256; ++table) {
    const auto spec = solve_lut_cone(3, static_cast<uint16_t>(table));
    if (!spec) continue;
    ++solved;
    expect_spec_consistent(*spec);
  }
  // At least the symmetric workhorses must be in the accepted set.
  EXPECT_GT(solved, 16);
}

TEST(LutSolver, AmplitudeSearchUnlocksAnd3Class) {
  // AND3-class tables (one minterm / one maxterm) have no grid-3 embedding
  // at uniform mu = 1/8 -- the classic solver rightly rejects them. With
  // re-encodable inputs the generalized search may move inputs to amplitude
  // 1/16 on grid 4, where every one-minterm table embeds with unit weights.
  for (unsigned c = 0; c < 8; ++c) {
    const uint16_t one_hot = static_cast<uint16_t>(1u << c);
    const uint16_t one_cold = static_cast<uint16_t>(0xFFu ^ one_hot);
    for (const uint16_t t : {one_hot, one_cold}) {
      EXPECT_FALSE(solve_lut_cone(3, t).has_value())
          << "grid-3 embedding should not exist for 0x" << std::hex << t;
      LutConeProblem prob;
      prob.k = 3;
      prob.tables[0] = t;
      prob.in_reencodable = {true, true, true, true};
      const auto spec = solve_lut_cone(prob);
      ASSERT_TRUE(spec.has_value()) << "table 0x" << std::hex << t;
      EXPECT_EQ(spec->grid_log, 4);
      expect_spec_consistent(*spec);
    }
  }
  // Pinning any one input to amplitude 3 (a raw circuit input, not
  // re-encodable) must not break AND3 -- the mixed-amplitude search covers it.
  LutConeProblem mixed;
  mixed.k = 3;
  mixed.tables[0] = 0x80; // AND3
  mixed.in_amp_log = {3, 0, 0, 0};
  mixed.in_reencodable = {false, true, true, true};
  const auto spec = solve_lut_cone(mixed);
  ASSERT_TRUE(spec.has_value());
  expect_spec_consistent(*spec);
}

TEST(LutSolver, ExhaustiveK3AcrossAmplitudeSets) {
  // Every three-input table, under both amplitude regimes: the pinned
  // grid-3 problem (all inputs mu = 1/8) and the free search with
  // re-encodable producers. Whatever solves must verify against the slot
  // algebra; the free search must solve a strict superset.
  int solved_pinned = 0, solved_free = 0;
  for (unsigned table = 1; table < 255; ++table) { // constants never embed
    const auto pinned = solve_lut_cone(3, static_cast<uint16_t>(table));
    if (pinned) {
      ++solved_pinned;
      expect_spec_consistent(*pinned);
    }
    LutConeProblem prob;
    prob.k = 3;
    prob.tables[0] = static_cast<uint16_t>(table);
    prob.in_reencodable = {true, true, true, true};
    const auto free_spec = solve_lut_cone(prob);
    if (free_spec) {
      ++solved_free;
      expect_spec_consistent(*free_spec);
    }
    // Coarsest-grid-first search: anything with a grid-3 embedding still
    // solves when the amplitudes are freed.
    if (pinned) {
      EXPECT_TRUE(free_spec.has_value()) << "table " << table;
    }
  }
  EXPECT_GT(solved_pinned, 16);
  EXPECT_GT(solved_free, solved_pinned);
}

TEST(LutSolver, MultiOutputPacksSolveAndVerify) {
  // The packing pass's bread and butter. (AND2, OR2) shares one rotation on
  // the stock grid; (XOR3, MAJ3) -- a whole full adder -- packs once the
  // inputs may be re-encoded.
  {
    LutConeProblem ha;
    ha.k = 2;
    ha.n_out = 2;
    ha.tables[0] = 0x8; // AND2
    ha.tables[1] = 0xE; // OR2
    ha.in_amp_log = {3, 3, 0, 0};
    const auto spec = solve_lut_cone(ha);
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->n_out, 2);
    EXPECT_GT(spec->output(1).slot_shift, 0);
    expect_spec_consistent(*spec);
  }
  {
    const uint16_t xor3 = table_of(3, [](unsigned b) {
      return (__builtin_popcount(b) & 1) != 0;
    });
    const uint16_t maj3 = table_of(3, [](unsigned b) {
      return __builtin_popcount(b) >= 2;
    });
    LutConeProblem fa;
    fa.k = 3;
    fa.n_out = 2;
    fa.tables[0] = xor3;
    fa.tables[1] = maj3;
    fa.in_reencodable = {true, true, true, true};
    const auto spec = solve_lut_cone(fa);
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->n_out, 2);
    expect_spec_consistent(*spec);
  }
}

TEST(LutExec, RecordedLutMatchesTableUnderEncryption) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const uint16_t maj3 = table_of(3, [](unsigned b) {
    return __builtin_popcount(b) >= 2;
  });
  const uint16_t xor3 = table_of(3, [](unsigned b) {
    return (__builtin_popcount(b) & 1) != 0;
  });
  for (const uint16_t table : {maj3, xor3}) {
    CircuitBuilder b;
    const Wire x = b.input(), y = b.input(), z = b.input();
    const Wire out = b.gate_lut({x, y, z}, table);
    b.mark_output(out);
    BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks,
                                      K.params.mu(), 2);
    Rng rng = test::test_rng(91);
    for (unsigned bits = 0; bits < 8; ++bits) {
      std::vector<LweSample> in;
      for (int i = 0; i < 3; ++i) {
        in.push_back(lwe_encrypt_bit(K.sk.lwe, (bits >> i) & 1, K.params.mu(),
                                     K.params.lwe.sigma, rng));
      }
      const BatchResult r = ex.run(b.graph(), std::move(in));
      EXPECT_EQ(K.sk.decrypt_bit(r.at(out)), lut_eval(table, bits) ? 1 : 0)
          << "table 0x" << std::hex << table << " bits " << bits;
    }
  }
}

TEST(LutExec, ChainedLutsRefreshNoise) {
  // LUT -> LUT chaining: each functional bootstrap outputs a fresh-noise
  // +-mu ciphertext, so a fused graph can stack LUT levels like gates.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const uint16_t maj3 = table_of(3, [](unsigned b) {
    return __builtin_popcount(b) >= 2;
  });
  const uint16_t xor3 = table_of(3, [](unsigned b) {
    return (__builtin_popcount(b) & 1) != 0;
  });
  CircuitBuilder b;
  const Wire x = b.input(), y = b.input(), z = b.input(), w = b.input();
  const Wire m = b.gate_lut({x, y, z}, maj3);
  const Wire out = b.gate_lut({m, z, w}, xor3);
  b.mark_output(out);
  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  Rng rng = test::test_rng(92);
  for (unsigned bits = 0; bits < 16; ++bits) {
    std::vector<LweSample> in;
    for (int i = 0; i < 4; ++i) {
      in.push_back(lwe_encrypt_bit(K.sk.lwe, (bits >> i) & 1, K.params.mu(),
                                   K.params.lwe.sigma, rng));
    }
    const BatchResult r = ex.run(b.graph(), std::move(in));
    const int maj = __builtin_popcount(bits & 7u) >= 2 ? 1 : 0;
    const int want = maj ^ ((bits >> 2) & 1) ^ ((bits >> 3) & 1);
    EXPECT_EQ(K.sk.decrypt_bit(r.at(out)), want) << "bits " << bits;
  }
}

TEST(Fusion, AdderConesCollapse) {
  // A ripple-carry adder is the canonical fusion target: per full-adder bit,
  // sum (XOR3) and carry (MAJ3) each become one LUT, retiring the two-XOR /
  // AND-AND-OR cones.
  CircuitBuilder b;
  const SymWord x = b.input_word(8), y = b.input_word(8);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
  b.mark_output(sum);

  OptimizeOptions no_fuse;
  no_fuse.fuse_lut_cones = false;
  const CompiledGraph unfused = b.compile(no_fuse);
  const CompiledGraph fused = b.compile();

  EXPECT_GT(fused.stats.cones_fused, 0);
  EXPECT_GT(fused.stats.fused_away, 0);
  EXPECT_LT(fused.stats.bootstraps_after, unfused.stats.bootstraps_after);
  // The headline claim: >= 40% fewer bootstraps on a pure adder.
  EXPECT_LE(fused.stats.bootstraps_after * 10,
            unfused.stats.bootstraps_after * 6);
  for (const auto& n : fused.graph.nodes()) {
    if (n.is_gate() && n.kind == GateKind::kLut) {
      EXPECT_GE(n.lut.k, 1);
      EXPECT_LE(n.lut.k, kLutMaxFanIn);
      expect_spec_consistent(n.lut);
    }
  }
  // Wavefronts still cover exactly the surviving gates; the sim bridge sees
  // each LUT as one bootstrap.
  size_t covered = 0;
  for (const auto& f : fused.graph.wavefronts()) covered += f.size();
  EXPECT_EQ(covered, static_cast<size_t>(fused.graph.num_gates()));
  const sim::GateDag dag = exec::to_gate_dag(fused.graph);
  EXPECT_EQ(dag.total_bootstraps(), fused.graph.bootstrap_count());
}

TEST(Fusion, FusedBundleDecryptsIdenticallyToUnfused) {
  // 4-bit adder + comparator + multiplier bundle: the fused graph must
  // produce the same plaintexts as the unfused one on every output, across a
  // batch, and bit-identically across thread counts.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  constexpr int kW = 4;

  CircuitBuilder b;
  const SymWord x = b.input_word(kW), y = b.input_word(kW);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
  const SymWord prod = wc.multiply(x, y);
  const Wire gt = wc.greater_than(x, y);
  const Wire eq = wc.equal(x, y);
  b.mark_output(sum);
  b.mark_output(prod);
  b.mark_output(gt);
  b.mark_output(eq);

  OptimizeOptions no_fuse;
  no_fuse.fuse_lut_cones = false;
  const CompiledGraph unfused = b.compile(no_fuse);
  const CompiledGraph fused = b.compile();
  ASSERT_GT(fused.stats.cones_fused, 0);
  EXPECT_LT(fused.stats.bootstraps_after, unfused.stats.bootstraps_after);

  BatchExecutor<DoubleFftEngine> ex1(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> ex4(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);

  Rng value_rng = test::test_rng(55);
  for (int round = 0; round < 3; ++round) {
    const uint64_t vx = value_rng.uniform_below(1u << kW);
    const uint64_t vy = value_rng.uniform_below(1u << kW);
    Rng r1 = test::test_rng(700 + round), r2 = test::test_rng(700 + round);
    const auto enc_inputs = [&](Rng& rng) {
      std::vector<LweSample> in;
      for (const uint64_t v : {vx, vy}) {
        const EncWord e = circuits::encrypt_word(K.sk, v, kW, rng);
        in.insert(in.end(), e.bits.begin(), e.bits.end());
      }
      return in;
    };
    const BatchResult rf = ex4.run(fused.graph, enc_inputs(r1));
    const BatchResult rs = ex1.run(fused.graph, enc_inputs(r2));
    // Thread-count determinism holds for LUT nodes too.
    ASSERT_EQ(rf.values.size(), rs.values.size());
    for (size_t i = 0; i < rf.values.size(); ++i) {
      ASSERT_TRUE(rf.values[i].a == rs.values[i].a && rf.values[i].b == rs.values[i].b)
          << "wire " << i;
    }
    Rng r3 = test::test_rng(700 + round);
    const BatchResult ru = ex4.run(unfused.graph, enc_inputs(r3));

    const auto word_bits = [&](const CompiledGraph& c, const BatchResult& r,
                               const SymWord& w) {
      EncWord e;
      for (const Wire bit : w.bits) e.bits.push_back(r.at(c.remap(bit)));
      return circuits::decrypt_word(K.sk, e);
    };
    const uint64_t want_sum = vx + vy;
    const uint64_t want_prod = (vx * vy) & 0xF;
    EXPECT_EQ(word_bits(fused, rf, sum), want_sum);
    EXPECT_EQ(word_bits(unfused, ru, sum), want_sum);
    EXPECT_EQ(word_bits(fused, rf, prod), want_prod);
    EXPECT_EQ(word_bits(unfused, ru, prod), want_prod);
    EXPECT_EQ(K.sk.decrypt_bit(rf.at(fused.remap(gt))), vx > vy ? 1 : 0);
    EXPECT_EQ(K.sk.decrypt_bit(ru.at(unfused.remap(gt))), vx > vy ? 1 : 0);
    EXPECT_EQ(K.sk.decrypt_bit(rf.at(fused.remap(eq))), vx == vy ? 1 : 0);
    EXPECT_EQ(K.sk.decrypt_bit(ru.at(unfused.remap(eq))), vx == vy ? 1 : 0);
  }
}

TEST(Fusion, SiblingLutsPackIntoOneRotation) {
  // Two LUT nodes over the same operand pair merge into a single rotation
  // with two sample extractions -- and the multi-output executor path must
  // decrypt exactly, at one thread and several.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);

  CircuitBuilder b;
  const Wire x = b.input(), y = b.input();
  const Wire a = b.gate_lut({x, y}, 0x8); // AND2
  const Wire o = b.gate_lut({x, y}, 0xE); // OR2
  b.mark_output(a);
  b.mark_output(o);
  const CompiledGraph c = b.compile();

  EXPECT_GE(c.stats.luts_packed, 2);
  EXPECT_EQ(c.stats.extra_outputs, 1);
  EXPECT_EQ(c.graph.bootstrap_count(), 1);
  EXPECT_EQ(c.graph.extraction_count(), 2);
  int multi = 0, louts = 0;
  for (const auto& n : c.graph.nodes()) {
    if (!n.is_gate()) continue;
    if (n.kind == GateKind::kLut) {
      EXPECT_EQ(n.lut.n_out, 2);
      expect_spec_consistent(n.lut);
      ++multi;
    } else if (n.kind == GateKind::kLutOut) {
      ++louts;
    }
  }
  EXPECT_EQ(multi, 1);
  EXPECT_EQ(louts, 1);

  BatchExecutor<DoubleFftEngine> ex1(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  BatchExecutor<DoubleFftEngine> ex2(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  Rng rng = test::test_rng(93);
  for (unsigned bits = 0; bits < 4; ++bits) {
    std::vector<LweSample> in;
    for (int i = 0; i < 2; ++i) {
      in.push_back(lwe_encrypt_bit(K.sk.lwe, (bits >> i) & 1, K.params.mu(),
                                   K.params.lwe.sigma, rng));
    }
    for (auto* ex : {&ex1, &ex2}) {
      const BatchResult r = ex->run(c.graph, in);
      EXPECT_EQ(K.sk.decrypt_bit(r.at(c.remap(a))), (bits == 3) ? 1 : 0);
      EXPECT_EQ(K.sk.decrypt_bit(r.at(c.remap(o))), (bits != 0) ? 1 : 0);
    }
  }
  // One rotation, two extractions, per run -- straight off the counters.
  EXPECT_EQ(ex1.last_stats().bootstraps, 1);
  EXPECT_EQ(ex1.last_stats().sample_extracts, 2);
  EXPECT_EQ(ex1.last_stats().max_extraction_fanout, 2);
}

TEST(Fusion, And3ConeFusesThroughReencoding) {
  // (a^b) & (c^d) & (e^f): AND3 has no stock-grid embedding, so this only
  // collapses because fusion re-encodes the XOR producers to amplitude 1/16.
  // Regression for the encoding-aware legality rules: 5 gate bootstraps
  // become 4 (three XORs + one grid-4 AND3 LUT) at depth 2.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);

  CircuitBuilder b;
  std::vector<Wire> in;
  for (int i = 0; i < 6; ++i) in.push_back(b.input());
  const Wire x1 = b.gate_xor(in[0], in[1]);
  const Wire x2 = b.gate_xor(in[2], in[3]);
  const Wire x3 = b.gate_xor(in[4], in[5]);
  const Wire out = b.gate_and(b.gate_and(x1, x2), x3);
  b.mark_output(out);
  const CompiledGraph c = b.compile();

  EXPECT_EQ(c.stats.bootstraps_after, 4);
  EXPECT_EQ(c.stats.depth_after, 2);
  bool found_and3 = false;
  for (const auto& n : c.graph.nodes()) {
    if (n.is_gate() && n.kind == GateKind::kLut && n.lut.k == 3) {
      found_and3 = true;
      EXPECT_EQ(n.lut.grid_log, 4);
      expect_spec_consistent(n.lut);
    }
  }
  EXPECT_TRUE(found_and3);

  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  Rng rng = test::test_rng(94);
  for (int trial = 0; trial < 16; ++trial) {
    const unsigned bits = static_cast<unsigned>(rng.uniform_below(64));
    std::vector<LweSample> enc;
    for (int i = 0; i < 6; ++i) {
      enc.push_back(lwe_encrypt_bit(K.sk.lwe, (bits >> i) & 1, K.params.mu(),
                                    K.params.lwe.sigma, rng));
    }
    const BatchResult r = ex.run(c.graph, std::move(enc));
    const int b01 = ((bits >> 0) ^ (bits >> 1)) & 1;
    const int b23 = ((bits >> 2) ^ (bits >> 3)) & 1;
    const int b45 = ((bits >> 4) ^ (bits >> 5)) & 1;
    EXPECT_EQ(K.sk.decrypt_bit(r.at(c.remap(out))), b01 & b23 & b45)
        << "bits " << bits;
  }
}

TEST(Fusion, MuxWordSelectorFlattens) {
  // A 4-bit 4-to-1 word selector: four MUX trees over one shared select
  // pair. Flattening lowers every tree to select-minterm LUTs (shared across
  // the word) plus per-bit gated terms joined by bootstrap-free disjoint
  // ORs; no kMux survives and both the bootstrap count and the critical
  // path shrink.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  constexpr int kW = 4;

  CircuitBuilder b;
  const Wire s0 = b.input(), s1 = b.input();
  std::array<SymWord, 4> words;
  for (auto& w : words) w = b.input_word(kW);
  SymWord out;
  for (int j = 0; j < kW; ++j) {
    const Wire lo = b.gate_mux(s0, words[1].bits[j], words[0].bits[j]);
    const Wire hi = b.gate_mux(s0, words[3].bits[j], words[2].bits[j]);
    out.bits.push_back(b.gate_mux(s1, hi, lo));
  }
  b.mark_output(out);

  OptimizeOptions no_flatten;
  no_flatten.flatten_mux_trees = false;
  no_flatten.fuse_lut_cones = false;
  no_flatten.pack_multi_output = false;
  const CompiledGraph muxed = b.compile(no_flatten);
  const CompiledGraph flat = b.compile();

  EXPECT_EQ(flat.stats.mux_trees_flattened, kW);
  EXPECT_LT(flat.stats.bootstraps_after, muxed.stats.bootstraps_after);
  EXPECT_LE(flat.stats.bootstraps_after, 20); // 4 minterms + 16 gated terms
  // A 2-level select tree is already depth-optimal; flattening must not
  // make it deeper (deep trees shrink -- see the muxtree16x4 bench).
  EXPECT_LE(flat.stats.depth_after, muxed.stats.depth_after);
  bool has_free_or = false;
  for (const auto& n : flat.graph.nodes()) {
    EXPECT_NE(n.kind, GateKind::kMux);
    if (n.kind == GateKind::kFreeOr) has_free_or = true;
  }
  EXPECT_TRUE(has_free_or);

  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 2);
  Rng rng = test::test_rng(95);
  for (int trial = 0; trial < 3; ++trial) {
    const int sel = static_cast<int>(rng.uniform_below(4));
    std::array<uint64_t, 4> v{};
    std::vector<LweSample> enc;
    enc.push_back(lwe_encrypt_bit(K.sk.lwe, sel & 1, K.params.mu(),
                                  K.params.lwe.sigma, rng));
    enc.push_back(lwe_encrypt_bit(K.sk.lwe, (sel >> 1) & 1, K.params.mu(),
                                  K.params.lwe.sigma, rng));
    for (auto& w : v) {
      w = rng.uniform_below(1u << kW);
      const circuits::EncWord e = circuits::encrypt_word(K.sk, w, kW, rng);
      enc.insert(enc.end(), e.bits.begin(), e.bits.end());
    }
    const BatchResult r = ex.run(flat.graph, std::move(enc));
    circuits::EncWord got;
    for (const Wire bit : out.bits) got.bits.push_back(r.at(flat.remap(bit)));
    EXPECT_EQ(circuits::decrypt_word(K.sk, got), v[static_cast<size_t>(sel)])
        << "sel " << sel;
  }
}

TEST(Fusion, MultiOutputFusedMatchesUnfusedAcrossEnginesThreadsBatches) {
  // The full round-2 pipeline (rebalance + flatten + fuse + pack) against
  // the bit-preserving baseline: random inputs, both spectral engines,
  // several thread counts, several batch sizes -- every output bit of every
  // batch item must agree.
  const auto& K = shared_keys();
  // A 4-bit multiplier: its partial-product / carry cones are where the
  // optimizer both fuses through re-encodings and packs sibling LUTs into
  // shared rotations, so this circuit drives the multi-output path hard.
  constexpr int kW = 4;

  CircuitBuilder b;
  const SymWord x = b.input_word(kW), y = b.input_word(kW);
  SymWordCircuits wc(b);
  const SymWord prod = wc.multiply(x, y);
  const Wire gt = wc.greater_than(x, y);
  b.mark_output(prod);
  b.mark_output(gt);
  const uint64_t prod_mask = (uint64_t{1} << prod.bits.size()) - 1;

  const CompiledGraph base = b.compile(OptimizeOptions::bit_preserving());
  const CompiledGraph fused = b.compile();
  ASSERT_GT(fused.stats.cones_fused, 0);
  // Packing must actually trigger, or this test is not exercising the
  // multi-output execution path it exists for.
  ASSERT_GT(fused.stats.extra_outputs, 0);
  EXPECT_LT(fused.stats.bootstraps_after, base.stats.bootstraps_after);

  Rng value_rng = test::test_rng(96);
  const auto run_on = [&](auto& ex, const CompiledGraph& c, uint64_t vx,
                          uint64_t vy, int batch, uint64_t seed) {
    std::vector<std::vector<LweSample>> items;
    for (int i = 0; i < batch; ++i) {
      Rng rng = test::test_rng(seed + static_cast<uint64_t>(i));
      std::vector<LweSample> in;
      for (const uint64_t v : {vx, vy}) {
        const circuits::EncWord e = circuits::encrypt_word(K.sk, v, kW, rng);
        in.insert(in.end(), e.bits.begin(), e.bits.end());
      }
      items.push_back(std::move(in));
    }
    std::vector<BatchResult> rs = ex.run_batch(c.graph, std::move(items));
    std::vector<std::pair<uint64_t, int>> decoded;
    for (const BatchResult& r : rs) {
      circuits::EncWord e;
      for (const Wire bit : prod.bits) e.bits.push_back(r.at(c.remap(bit)));
      decoded.emplace_back(circuits::decrypt_word(K.sk, e),
                           K.sk.decrypt_bit(r.at(c.remap(gt))));
    }
    return decoded;
  };

  const auto check_engine = [&](auto make_eng, const auto& dk,
                                const char* tag) {
    using Engine = std::decay_t<decltype(*make_eng())>;
    int round = 0;
    for (const int threads : {1, 3}) {
      for (const int batch : {1, 3}) {
        BatchExecutor<Engine> ex(make_eng, dk.bk, *dk.ks, K.params.mu(),
                                 threads);
        const uint64_t vx = value_rng.uniform_below(1u << kW);
        const uint64_t vy = value_rng.uniform_below(1u << kW);
        const uint64_t seed = 9000 + static_cast<uint64_t>(round++) * 17;
        const auto got_f = run_on(ex, fused, vx, vy, batch, seed);
        const auto got_b = run_on(ex, base, vx, vy, batch, seed);
        ASSERT_EQ(got_f.size(), static_cast<size_t>(batch));
        for (int i = 0; i < batch; ++i) {
          EXPECT_EQ(got_f[static_cast<size_t>(i)].first, (vx * vy) & prod_mask)
              << tag << " threads=" << threads << " batch=" << batch;
          EXPECT_EQ(got_f[static_cast<size_t>(i)],
                    got_b[static_cast<size_t>(i)])
              << tag << " threads=" << threads << " batch=" << batch
              << " item=" << i;
        }
      }
    }
  };

  {
    const auto dk = load_device_keyset(K.deng, K.ck2);
    check_engine(make_engine, dk, "double");
  }
  {
    SimdFftEngine seng(K.params.ring.n_ring);
    const auto dk = load_device_keyset(seng, K.ck2);
    const auto make_simd = [&] {
      return std::make_unique<SimdFftEngine>(K.params.ring.n_ring);
    };
    check_engine(make_simd, dk, "simd");
  }
}

TEST(Fusion, BitPreservingModeLeavesConesAlone) {
  CircuitBuilder b;
  const SymWord x = b.input_word(4), y = b.input_word(4);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/false);
  b.mark_output(sum);
  const CompiledGraph c = b.compile(OptimizeOptions::bit_preserving());
  EXPECT_EQ(c.stats.cones_fused, 0);
  for (const auto& n : c.graph.nodes()) {
    EXPECT_NE(n.kind, GateKind::kLut);
  }
}

} // namespace
} // namespace matcha
