#include <gtest/gtest.h>

#include "hw/matcha_design.h"

namespace matcha::hw {
namespace {

TEST(Table2, TotalsMatchPaper) {
  const auto d = compute_design_cost();
  EXPECT_NEAR(d.total_power_w, 39.98, 1.0);
  EXPECT_NEAR(d.total_area_mm2, 36.96, 1.0);
}

TEST(Table2, ComponentRowsMatchPaper) {
  const auto d = compute_design_cost();
  auto row = [&](const std::string& name) {
    for (const auto& r : d.rows) {
      if (r.name == name) return r;
    }
    ADD_FAILURE() << "missing row " << name;
    return ComponentCost{};
  };
  EXPECT_NEAR(row("TGSW cluster").power_w, 0.98, 0.05);
  EXPECT_NEAR(row("TGSW cluster").area_mm2, 0.368, 0.05);
  EXPECT_NEAR(row("EP core").power_w, 2.87, 0.1);
  EXPECT_NEAR(row("EP core").area_mm2, 1.89, 0.1);
  EXPECT_NEAR(row("Sub-total").power_w, 30.8, 0.5);
  EXPECT_NEAR(row("polynomial unit").power_w, 2.33, 0.1);
  EXPECT_NEAR(row("crossbar 1/2").power_w, 2.11, 0.1);
  EXPECT_NEAR(row("SPM").power_w, 3.52, 0.1);
  EXPECT_NEAR(row("SPM").area_mm2, 3.25, 0.1);
  EXPECT_NEAR(row("mem ctrl").power_w, 1.225, 0.01);
  EXPECT_NEAR(row("mem ctrl").area_mm2, 14.9, 0.01);
}

TEST(CostModel, PowerScalesWithClock) {
  Process p1, p2;
  p2.clock_ghz = 1.0;
  EXPECT_NEAR(unit_power_w(Unit::kMult32, p2) * 2.0,
              unit_power_w(Unit::kMult32, p1), 1e-9);
}

TEST(CostModel, EnergyPerOpIndependentOfClock) {
  Process p1, p2;
  p2.clock_ghz = 1.0;
  EXPECT_NEAR(unit_energy_j(Unit::kMult32, p1), unit_energy_j(Unit::kMult32, p2),
              1e-15);
}

TEST(CostModel, SramGrowsWithSizeAndBanks) {
  Process p;
  EXPECT_GT(sram_power_w(SramClass::kScratchpad, 4096, 32, p),
            sram_power_w(SramClass::kScratchpad, 2048, 32, p));
  EXPECT_GT(sram_power_w(SramClass::kScratchpad, 4096, 64, p),
            sram_power_w(SramClass::kScratchpad, 4096, 32, p));
  EXPECT_GT(sram_area_mm2(SramClass::kScratchpad, 4096, 32),
            sram_area_mm2(SramClass::kScratchpad, 1024, 32));
}

TEST(CostModel, CrossbarScalesWithPortsAndWidth) {
  Process p;
  EXPECT_GT(crossbar_power_w(8, 32, 256, p), crossbar_power_w(8, 32, 128, p));
  EXPECT_GT(crossbar_power_w(16, 32, 256, p), crossbar_power_w(8, 32, 256, p));
}

TEST(Design, MorePipelinesMorePowerAndArea) {
  MatchaConfig big;
  big.pipelines = 16;
  const auto d8 = compute_design_cost();
  const auto d16 = compute_design_cost(big);
  EXPECT_GT(d16.total_power_w, d8.total_power_w + 20.0);
  EXPECT_GT(d16.total_area_mm2, d8.total_area_mm2);
}

TEST(Design, ComponentPowerHelpersConsistentWithRows) {
  MatchaConfig cfg;
  const auto d = compute_design_cost(cfg);
  EXPECT_NEAR(tgsw_cluster_power_w(cfg), d.rows[0].power_w, 1e-9);
  EXPECT_NEAR(ep_core_power_w(cfg), d.rows[1].power_w, 1e-9);
}

} // namespace
} // namespace matcha::hw
