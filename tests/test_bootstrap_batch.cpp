// Batched blind rotation: group-major BSK streaming must be bit-for-bit
// identical to the sequential path at every batch size, on every engine,
// in every mode -- the whole point of sharing the per-sample step functions
// between blind_rotate and blind_rotate_batch. Also covers the batched
// functional bootstrap and the BatchExecutor's per-wavefront bootstrap
// flush across thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "circuits/word.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "fft/simd_fft.h"
#include "tfhe/functional.h"
#include "test_util.h"

namespace matcha {
namespace {

using circuits::EncWord;
using exec::BatchExecutor;
using exec::BatchResult;
using exec::CircuitBuilder;
using exec::SymWord;
using exec::SymWordCircuits;
using exec::Wire;
using test::shared_keys;

bool same_sample(const LweSample& x, const LweSample& y) {
  return x.a == y.a && x.b == y.b;
}

std::vector<SimdLevel> testable_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  for (const SimdLevel lvl :
       {SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    if (simd_level_available(lvl)) levels.push_back(lvl);
  }
  return levels;
}

/// Encrypt `count` gate inputs at alternating decryptable phases.
std::vector<LweSample> make_inputs(int count, uint64_t seed) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(seed);
  std::vector<LweSample> xs;
  xs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double ph = (i % 2 == 0 ? 1.0 : -1.0) * (0.05 + 0.4 * (i % 5) / 5.0);
    xs.push_back(
        lwe_encrypt(K.sk.lwe, double_to_torus32(ph), K.params.lwe.sigma, rng));
  }
  return xs;
}

/// bootstrap_batch vs per-sample bootstrap_into, bitwise, on one engine /
/// cloud keyset / mode / batch size. Two independent workspaces so neither
/// path can lean on the other's cached state.
template <class Engine>
void expect_batch_matches_sequential(const Engine& eng, const CloudKeyset& ck,
                                     BlindRotateMode mode, int batch,
                                     uint64_t seed) {
  const auto& K = shared_keys();
  const auto bk = load_bootstrap_key(eng, ck.bk);
  BootstrapWorkspace<Engine> ws_seq(eng, K.params.gadget);
  BootstrapWorkspace<Engine> ws_bat(eng, K.params.gadget);
  KeySwitchWorkspace ks_ws;

  const std::vector<LweSample> xs = make_inputs(batch, seed);
  std::vector<LweSample> want(static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    bootstrap_into(eng, bk, ck.ks, K.params.mu(), xs[static_cast<size_t>(b)],
                   ws_seq, want[static_cast<size_t>(b)], mode);
  }

  std::vector<LweSample> got(static_cast<size_t>(batch));
  std::vector<const LweSample*> in_ptrs(static_cast<size_t>(batch));
  std::vector<LweSample*> out_ptrs(static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    in_ptrs[static_cast<size_t>(b)] = &xs[static_cast<size_t>(b)];
    out_ptrs[static_cast<size_t>(b)] = &got[static_cast<size_t>(b)];
  }
  bootstrap_batch(eng, bk, ck.ks, K.params.mu(), in_ptrs.data(),
                  out_ptrs.data(), batch, ws_bat, ks_ws, mode);

  for (int b = 0; b < batch; ++b) {
    ASSERT_TRUE(same_sample(want[static_cast<size_t>(b)],
                            got[static_cast<size_t>(b)]))
        << "batch=" << batch << " sample " << b;
    const double ph = torus32_to_double(
        lwe_phase(K.sk.lwe, got[static_cast<size_t>(b)]));
    EXPECT_EQ(ph > 0 ? 1 : 0, b % 2 == 0 ? 1 : 0) << "sample " << b;
  }
}

TEST(BootstrapBatch, DoubleEngineBundleAllUnrolls) {
  const auto& K = shared_keys();
  for (const int batch : {1, 2, 7, 32}) {
    expect_batch_matches_sequential(K.deng, K.ck1, BlindRotateMode::kBundle,
                                    batch, 11);
    if (batch <= 7) { // keep the m sweep off the largest batch for runtime
      expect_batch_matches_sequential(K.deng, K.ck2, BlindRotateMode::kBundle,
                                      batch, 12);
      expect_batch_matches_sequential(K.deng, K.ck3, BlindRotateMode::kBundle,
                                      batch, 13);
    }
  }
}

TEST(BootstrapBatch, DoubleEngineClassicCMux) {
  const auto& K = shared_keys();
  for (const int batch : {1, 2, 7}) {
    expect_batch_matches_sequential(K.deng, K.ck1,
                                    BlindRotateMode::kClassicCMux, batch, 21);
  }
}

TEST(BootstrapBatch, SimdEngineAllLevels) {
  const auto& K = shared_keys();
  const int n_ring = K.params.ring.n_ring;
  for (const SimdLevel level : testable_levels()) {
    SimdFftEngine eng(n_ring, level);
    for (const int batch : {1, 7, 32}) {
      expect_batch_matches_sequential(eng, K.ck2, BlindRotateMode::kBundle,
                                      batch, 31);
    }
    expect_batch_matches_sequential(eng, K.ck1, BlindRotateMode::kClassicCMux,
                                    2, 32);
    expect_batch_matches_sequential(eng, K.ck3, BlindRotateMode::kBundle, 2,
                                    33);
  }
}

TEST(BootstrapBatch, OutputsMayAliasInputs) {
  const auto& K = shared_keys();
  const int batch = 5;
  const auto bk = load_bootstrap_key(K.deng, K.ck2.bk);
  BootstrapWorkspace<DoubleFftEngine> ws_a(K.deng, K.params.gadget);
  BootstrapWorkspace<DoubleFftEngine> ws_b(K.deng, K.params.gadget);
  KeySwitchWorkspace ks_ws_a, ks_ws_b;

  std::vector<LweSample> fresh = make_inputs(batch, 41);
  std::vector<LweSample> inplace = fresh; // same ciphertexts
  std::vector<LweSample> out(static_cast<size_t>(batch));
  std::vector<const LweSample*> in_ptrs(static_cast<size_t>(batch));
  std::vector<LweSample*> out_ptrs(static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    in_ptrs[static_cast<size_t>(b)] = &fresh[static_cast<size_t>(b)];
    out_ptrs[static_cast<size_t>(b)] = &out[static_cast<size_t>(b)];
  }
  bootstrap_batch(K.deng, bk, K.ck2.ks, K.params.mu(), in_ptrs.data(),
                  out_ptrs.data(), batch, ws_a, ks_ws_a);

  for (int b = 0; b < batch; ++b) {
    in_ptrs[static_cast<size_t>(b)] = &inplace[static_cast<size_t>(b)];
    out_ptrs[static_cast<size_t>(b)] = &inplace[static_cast<size_t>(b)];
  }
  bootstrap_batch(K.deng, bk, K.ck2.ks, K.params.mu(), in_ptrs.data(),
                  out_ptrs.data(), batch, ws_b, ks_ws_b);

  for (int b = 0; b < batch; ++b) {
    EXPECT_TRUE(same_sample(out[static_cast<size_t>(b)],
                            inplace[static_cast<size_t>(b)]))
        << "sample " << b;
  }
}

TEST(BootstrapBatch, FunctionalBatchMatchesSequential) {
  const auto& K = shared_keys();
  const int slots = 4;
  Rng rng = test::test_rng(51);
  std::vector<Torus32> vals(slots);
  for (int i = 0; i < slots; ++i) {
    vals[static_cast<size_t>(i)] = encode_message((i * 3 + 1) % slots, slots);
  }
  const TorusPolynomial tv = make_lut_testvector(K.params.ring.n_ring, vals);
  const auto bk = load_bootstrap_key(K.deng, K.ck2.bk);
  BootstrapWorkspace<DoubleFftEngine> ws_seq(K.deng, K.params.gadget);
  BootstrapWorkspace<DoubleFftEngine> ws_bat(K.deng, K.params.gadget);

  const int batch = 8;
  std::vector<LweSample> xs;
  for (int b = 0; b < batch; ++b) {
    xs.push_back(encrypt_message(K.sk.lwe, b % slots, slots,
                                 K.params.lwe.sigma, rng));
  }
  std::vector<LweSample> want(static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    functional_bootstrap_wo_keyswitch_into(K.deng, bk, tv,
                                           xs[static_cast<size_t>(b)], ws_seq,
                                           want[static_cast<size_t>(b)]);
  }

  std::vector<LweSample> got(static_cast<size_t>(batch));
  std::vector<const LweSample*> in_ptrs(static_cast<size_t>(batch));
  std::vector<LweSample*> out_ptrs(static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    in_ptrs[static_cast<size_t>(b)] = &xs[static_cast<size_t>(b)];
    out_ptrs[static_cast<size_t>(b)] = &got[static_cast<size_t>(b)];
  }
  functional_bootstrap_wo_keyswitch_batch(K.deng, bk, tv, in_ptrs.data(),
                                          out_ptrs.data(), batch, ws_bat);
  for (int b = 0; b < batch; ++b) {
    EXPECT_TRUE(same_sample(want[static_cast<size_t>(b)],
                            got[static_cast<size_t>(b)]))
        << "sample " << b;
  }
}

/// The executor's deferred bootstrap flush: a MUX-heavy circuit (both branch
/// bootstraps ride one flush) run at several thread counts must match the
/// single-thread run bitwise and decrypt to the plaintext evaluation.
struct MuxTreeCircuit {
  CircuitBuilder b;
  std::vector<Wire> ins;
  std::vector<Wire> outs;

  explicit MuxTreeCircuit(int width) {
    for (int i = 0; i < 3 * width; ++i) ins.push_back(b.input());
    for (int i = 0; i < width; ++i) {
      const Wire s = ins[static_cast<size_t>(3 * i)];
      const Wire t = ins[static_cast<size_t>(3 * i + 1)];
      const Wire u = ins[static_cast<size_t>(3 * i + 2)];
      const Wire m = b.gate_mux(s, t, u);
      const Wire x = b.gate_xor(m, b.gate_and(t, u));
      const Wire o = b.gate_mux(x, m, b.gate_not(s));
      outs.push_back(o);
      b.mark_output(o);
    }
  }

  static int eval_plain(int s, int t, int u) {
    const int m = s ? t : u;
    const int x = m ^ (t & u);
    return x ? m : (s ? 0 : 1);
  }
};

TEST(BootstrapBatch, ExecutorThreadCountsBitIdenticalAndCorrect) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const int width = 4;
  MuxTreeCircuit c(width);

  Rng bit_rng = test::test_rng(61);
  std::vector<int> plain;
  for (size_t i = 0; i < c.ins.size(); ++i) {
    plain.push_back(static_cast<int>(bit_rng.uniform_below(2)));
  }
  const auto encrypt_inputs = [&](Rng& rng) {
    std::vector<LweSample> in;
    for (const int p : plain) in.push_back(K.sk.encrypt_bit(p, rng));
    return in;
  };

  auto make_engine = [&] {
    return std::make_unique<DoubleFftEngine>(K.params.ring.n_ring);
  };
  BatchResult ref;
  for (const int threads : {1, 2, 4}) {
    BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks,
                                      K.params.mu(), threads);
    Rng rng_run = test::test_rng(62); // identical ciphertext inputs
    BatchResult r = ex.run(c.b.graph(), encrypt_inputs(rng_run));
    if (threads == 1) {
      ref = std::move(r);
      for (int i = 0; i < width; ++i) {
        EXPECT_EQ(K.sk.decrypt_bit(ref.at(c.outs[static_cast<size_t>(i)])),
                  MuxTreeCircuit::eval_plain(plain[static_cast<size_t>(3 * i)],
                                             plain[static_cast<size_t>(3 * i + 1)],
                                             plain[static_cast<size_t>(3 * i + 2)]))
            << "lane " << i;
      }
      continue;
    }
    ASSERT_EQ(r.values.size(), ref.values.size()) << threads << " threads";
    for (size_t w = 0; w < r.values.size(); ++w) {
      ASSERT_TRUE(same_sample(r.values[w], ref.values[w]))
          << threads << " threads, wire " << w;
    }
  }
}

/// Randomized circuits through the executor: batched wavefront evaluation
/// (adder + comparator word circuits, which mix binary gates, MUX and NOT)
/// must decrypt to the plaintext arithmetic at every thread count.
TEST(BootstrapBatch, ExecutorRandomWordCircuitsDecryptCorrectly) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  constexpr int kWidth = 3;

  CircuitBuilder b;
  SymWord x = b.input_word(kWidth);
  SymWord y = b.input_word(kWidth);
  SymWordCircuits wc(b);
  SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
  Wire gt = wc.greater_than(x, y);
  for (const Wire w : sum.bits) b.mark_output(w);
  b.mark_output(gt);

  auto make_engine = [&] {
    return std::make_unique<DoubleFftEngine>(K.params.ring.n_ring);
  };
  Rng val_rng = test::test_rng(71);
  for (const int threads : {1, 4}) {
    BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks,
                                      K.params.mu(), threads);
    const uint64_t vx = val_rng.uniform_below(1u << kWidth);
    const uint64_t vy = val_rng.uniform_below(1u << kWidth);
    Rng rng = test::test_rng(72 + static_cast<uint64_t>(threads));
    std::vector<LweSample> in;
    const EncWord ex_w = circuits::encrypt_word(K.sk, vx, kWidth, rng);
    const EncWord ey_w = circuits::encrypt_word(K.sk, vy, kWidth, rng);
    in.insert(in.end(), ex_w.bits.begin(), ex_w.bits.end());
    in.insert(in.end(), ey_w.bits.begin(), ey_w.bits.end());
    const BatchResult r = ex.run(b.graph(), std::move(in));
    EncWord w;
    for (const Wire s : sum.bits) w.bits.push_back(r.at(s));
    EXPECT_EQ(circuits::decrypt_word(K.sk, w), vx + vy)
        << vx << "+" << vy << " @" << threads << " threads";
    EXPECT_EQ(K.sk.decrypt_bit(r.at(gt)), vx > vy ? 1 : 0);
  }
}

} // namespace
} // namespace matcha
