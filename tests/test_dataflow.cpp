// The dataflow scheduler, fuzzed at both layers. Software: randomized gate
// DAGs executed by the barrier-free BatchExecutor must be bit-identical to
// sequential replay at every thread count and batch size, and must decrypt
// to the plaintext evaluation of the same graph. Hardware: randomized
// GateDags partitioned across 1/2/4 chips must place every gate on exactly
// one chip with chip ids monotone along edges (so the chip quotient graph is
// acyclic -- no cross-chip cycle), and the multi-chip schedule must respect
// dependence + transfer ordering, reducing exactly to the single-chip
// schedule at num_chips == 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "exec/thread_pool.h"
#include "sim/chip_sim.h"
#include "sim/gate_dag.h"
#include "test_util.h"

namespace matcha {
namespace {

using exec::BatchExecutor;
using exec::BatchResult;
using exec::CircuitBuilder;
using exec::ThreadPool;
using exec::Wire;
using test::shared_keys;

// ---------------------------------------------------------------------------
// ThreadPool: capped participation + work-stealing task runs.
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunCapsParticipatingWorkers) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  std::atomic<int> max_slot{-1};
  pool.run(
      [&](int slot) {
        ++calls;
        int seen = max_slot.load();
        while (slot > seen && !max_slot.compare_exchange_weak(seen, slot)) {
        }
      },
      3);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_LT(max_slot.load(), 3);

  // Uncapped: every slot participates exactly once.
  calls = 0;
  pool.run([&](int) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, RunTasksExecutesEveryPushedTask) {
  // Seed tasks expand into a binary tree pushed through the sink; every node
  // of the tree must execute exactly once, for any worker count.
  constexpr uint64_t kLeafBase = 1u << 10;
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    std::atomic<int64_t> executed{0};
    const std::vector<uint64_t> seeds{1};
    // Nodes 1..2047: node t pushes 2t and 2t+1 while t < kLeafBase.
    const int64_t total = 2 * kLeafBase - 1;
    const auto stats = pool.run_tasks(
        seeds, total,
        [&](ThreadPool::TaskSink& sink, uint64_t t) {
          ++executed;
          if (t < kLeafBase) {
            sink.push(2 * t);
            sink.push(2 * t + 1);
          }
        });
    EXPECT_EQ(executed.load(), total) << threads << " threads";
    EXPECT_LE(stats.workers, threads);
  }
}

TEST(ThreadPool, RunTasksCapsWorkersAtTaskCount) {
  ThreadPool pool(8);
  std::atomic<int> max_slot{-1};
  const std::vector<uint64_t> seeds{0, 1};
  const auto stats = pool.run_tasks(seeds, 2, [&](ThreadPool::TaskSink& sink,
                                                  uint64_t) {
    int seen = max_slot.load();
    while (sink.slot() > seen &&
           !max_slot.compare_exchange_weak(seen, sink.slot())) {
    }
  });
  EXPECT_EQ(stats.workers, 2); // a 2-task run must not wake 8 workers
  EXPECT_LT(max_slot.load(), 2);
}

TEST(ThreadPool, RunTasksPropagatesExceptions) {
  ThreadPool pool(4);
  const std::vector<uint64_t> seeds{0, 1, 2, 3};
  EXPECT_THROW(pool.run_tasks(seeds, 100,
                              [&](ThreadPool::TaskSink&, uint64_t t) {
                                if (t == 2) throw std::runtime_error("boom");
                              }),
               std::runtime_error);
  // The pool survives an aborted run.
  std::atomic<int> ok{0};
  pool.run([&](int) { ++ok; });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, WatchdogDeadlineStopsARunawayRunInsteadOfHanging) {
  ThreadPool pool(4);
  const std::vector<uint64_t> seeds{0, 1, 2, 3};
  std::atomic<int> executed{0};
  // Tasks that re-enqueue themselves forever: without the watchdog this run
  // never terminates. The deadline must stop it and say so in the stats.
  const auto stats = pool.run_tasks(
      seeds, 1000,
      [&](ThreadPool::TaskSink& sink, uint64_t t) {
        ++executed;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        sink.push(t + 1000);
      },
      /*max_workers=*/1 << 30,
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30));
  EXPECT_TRUE(stats.timed_out);
  EXPECT_GT(executed.load(), 0);
  EXPECT_LT(executed.load(), 1000);
  // The pool survives a timed-out run.
  std::atomic<int> alive{0};
  pool.run([&](int) { ++alive; });
  EXPECT_EQ(alive.load(), 4);
}

// ---------------------------------------------------------------------------
// Randomized software DAGs: parallel == sequential == plaintext.
// ---------------------------------------------------------------------------

/// A random DAG over the full gate alphabet plus its plaintext shadow.
struct RandomCircuit {
  CircuitBuilder b;
  std::vector<Wire> wires;     ///< every recorded wire, inputs first
  std::vector<int> input_wire; ///< indices into `wires` that are inputs

  RandomCircuit(Rng& rng, int num_inputs, int num_gates) {
    for (int i = 0; i < num_inputs; ++i) {
      wires.push_back(b.input());
      input_wire.push_back(i);
    }
    for (int g = 0; g < num_gates; ++g) {
      const auto pick = [&] {
        return wires[rng.uniform_below(static_cast<uint32_t>(wires.size()))];
      };
      Wire w;
      switch (rng.uniform_below(8)) {
        case 0: w = b.gate_and(pick(), pick()); break;
        case 1: w = b.gate_or(pick(), pick()); break;
        case 2: w = b.gate_xor(pick(), pick()); break;
        case 3: w = b.gate_nand(pick(), pick()); break;
        case 4: w = b.gate_nor(pick(), pick()); break;
        case 5: w = b.gate_xnor(pick(), pick()); break;
        case 6: w = b.gate_not(pick()); break;
        default: w = b.gate_mux(pick(), pick(), pick()); break;
      }
      wires.push_back(w);
      b.mark_output(w);
    }
  }

  /// Plaintext evaluation over the recorded graph (independent of the
  /// executor: walks the nodes directly).
  std::vector<bool> eval_plain(const std::vector<bool>& inputs) const {
    const auto& g = b.graph();
    std::vector<bool> v(g.nodes().size(), false);
    for (int i = 0; i < g.num_inputs(); ++i) v[g.inputs()[i]] = inputs[i];
    for (size_t i = 0; i < g.nodes().size(); ++i) {
      const auto& n = g.nodes()[i];
      if (!n.is_gate()) continue;
      const bool a = n.in[0] >= 0 && v[n.in[0]];
      const bool c = n.in[1] >= 0 && v[n.in[1]];
      const bool d = n.in[2] >= 0 && v[n.in[2]];
      switch (n.kind) {
        case GateKind::kAnd: v[i] = a && c; break;
        case GateKind::kOr: v[i] = a || c; break;
        case GateKind::kXor: v[i] = a != c; break;
        case GateKind::kNand: v[i] = !(a && c); break;
        case GateKind::kNor: v[i] = !(a || c); break;
        case GateKind::kXnor: v[i] = a == c; break;
        case GateKind::kNot: v[i] = !a; break;
        case GateKind::kMux: v[i] = a ? c : d; break;
        case GateKind::kFreeOr: v[i] = a || c; break;
        case GateKind::kLut:
        case GateKind::kLutOut:
          ADD_FAILURE() << "no LUTs recorded";
          break;
      }
    }
    return v;
  }
};

bool same_sample(const LweSample& x, const LweSample& y) {
  return x.a == y.a && x.b == y.b;
}

TEST(DataflowFuzz, RandomGraphsBitIdenticalAcrossThreadsAndBatches) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  const auto make_engine = [] {
    return std::make_unique<DoubleFftEngine>(
        shared_keys().params.ring.n_ring);
  };

  Rng shape_rng = test::test_rng(0xDA7AF10);
  for (int trial = 0; trial < 3; ++trial) {
    const int num_inputs = 3 + static_cast<int>(shape_rng.uniform_below(3));
    const int num_gates = 8 + static_cast<int>(shape_rng.uniform_below(5));
    RandomCircuit c(shape_rng, num_inputs, num_gates);

    // A random batch size with distinct plaintexts per item, identical
    // across executors.
    const int items = 1 + static_cast<int>(shape_rng.uniform_below(3));
    std::vector<std::vector<bool>> plain(items);
    const auto encrypt_batch = [&](Rng& rng) {
      std::vector<std::vector<LweSample>> batch(items);
      for (int it = 0; it < items; ++it) {
        for (int i = 0; i < num_inputs; ++i) {
          batch[it].push_back(
              K.sk.encrypt_bit(plain[it][static_cast<size_t>(i)] ? 1 : 0, rng));
        }
      }
      return batch;
    };
    Rng bit_rng = test::test_rng(500 + trial);
    for (int it = 0; it < items; ++it) {
      for (int i = 0; i < num_inputs; ++i) {
        plain[it].push_back(bit_rng.uniform_below(2) != 0);
      }
    }

    BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks,
                                       K.params.mu(), 1);
    Rng rng_seq = test::test_rng(900 + trial);
    const auto ref = seq.run_batch(c.b.graph(), encrypt_batch(rng_seq));
    ASSERT_EQ(seq.last_stats().pool_dispatches, 1);

    // Decrypted outputs match the plaintext shadow evaluation.
    for (int it = 0; it < items; ++it) {
      const auto want = c.eval_plain(plain[static_cast<size_t>(it)]);
      for (size_t w = num_inputs; w < c.wires.size(); ++w) {
        EXPECT_EQ(K.sk.decrypt_bit(ref[static_cast<size_t>(it)].at(
                      c.wires[w])),
                  want[static_cast<size_t>(c.wires[w].id)] ? 1 : 0)
            << "trial " << trial << " item " << it << " wire " << w;
      }
    }

    for (const int threads : {2, 4}) {
      BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks,
                                         K.params.mu(), threads);
      Rng rng_par = test::test_rng(900 + trial); // identical ciphertexts
      const auto got = par.run_batch(c.b.graph(), encrypt_batch(rng_par));
      ASSERT_EQ(got.size(), ref.size());
      for (size_t it = 0; it < got.size(); ++it) {
        ASSERT_EQ(got[it].values.size(), ref[it].values.size());
        for (size_t w = 0; w < ref[it].values.size(); ++w) {
          ASSERT_TRUE(same_sample(got[it].values[w], ref[it].values[w]))
              << "trial " << trial << " threads " << threads << " item " << it
              << " wire " << w;
        }
      }
      const auto& st = par.last_stats();
      EXPECT_EQ(st.pool_dispatches, 1);
      EXPECT_LE(st.workers, threads);
      EXPECT_GT(st.sched_efficiency, 0.0);
      EXPECT_LE(st.sched_efficiency, 1.05); // timer noise, never >> 1
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized sim DAGs: partition completeness + schedule invariants.
// ---------------------------------------------------------------------------

sim::GateDag random_dag(Rng& rng, int max_gates) {
  sim::GateDag dag;
  const int n = 1 + static_cast<int>(rng.uniform_below(
                        static_cast<uint32_t>(max_gates)));
  dag.gates.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    dag.gates[static_cast<size_t>(i)].bootstraps =
        static_cast<int>(rng.uniform_below(3)); // 0 (NOT), 1, 2 (MUX)
    const int fan = static_cast<int>(rng.uniform_below(4));
    for (int j = 0; j < fan && i > 0; ++j) {
      const int d = static_cast<int>(rng.uniform_below(static_cast<uint32_t>(i)));
      auto& deps = dag.gates[static_cast<size_t>(i)].deps;
      if (std::find(deps.begin(), deps.end(), d) == deps.end()) {
        deps.push_back(d);
      }
    }
  }
  return dag;
}

TEST(MultiChipFuzz, PartitionCompleteAcyclicAndBalanced) {
  Rng rng = test::test_rng(0x5117);
  for (int trial = 0; trial < 100; ++trial) {
    const sim::GateDag dag = random_dag(rng, 48);
    for (const int chips : {1, 2, 4}) {
      const sim::GateDagPartition part = sim::partition_gate_dag(dag, chips);
      ASSERT_EQ(part.num_chips, chips);
      ASSERT_EQ(part.chip_of.size(), dag.gates.size());
      // Every gate on exactly one chip, in range.
      std::vector<int64_t> load(static_cast<size_t>(chips), 0);
      for (size_t i = 0; i < dag.gates.size(); ++i) {
        ASSERT_GE(part.chip_of[i], 0);
        ASSERT_LT(part.chip_of[i], chips);
        load[static_cast<size_t>(part.chip_of[i])] += dag.gates[i].bootstraps;
      }
      ASSERT_EQ(load, part.chip_bootstraps);
      // Chip ids monotone along edges: the chip-level quotient graph has no
      // cycle (all inter-chip traffic flows low -> high).
      int64_t cut = 0;
      for (size_t i = 0; i < dag.gates.size(); ++i) {
        for (const int d : dag.gates[i].deps) {
          ASSERT_LE(part.chip_of[static_cast<size_t>(d)], part.chip_of[i])
              << "trial " << trial << " chips " << chips;
          cut += part.chip_of[static_cast<size_t>(d)] != part.chip_of[i];
        }
      }
      ASSERT_EQ(cut, part.cut_wires);
    }
  }
}

TEST(MultiChipFuzz, ScheduleRespectsDependenciesAndTransfers) {
  sim::SimParams p;
  p.tfhe = TfheParams::security110();
  p.unroll_m = 1;
  const sim::Dfg dfg = sim::build_bootstrap_dfg(p);
  constexpr int64_t kTransfer = 1000;

  Rng rng = test::test_rng(0xC41B);
  for (int trial = 0; trial < 12; ++trial) {
    const sim::GateDag dag = random_dag(rng, 24);
    const auto r1 = sim::schedule_gate_dag(dfg, dag, p.hw.pipelines);
    for (const int chips : {1, 2, 4}) {
      const auto part = sim::partition_gate_dag(dag, chips);
      const auto r = sim::schedule_gate_dag_multichip(dfg, dag, part,
                                                      p.hw.pipelines, kTransfer);
      ASSERT_EQ(r.num_gates, static_cast<int>(dag.gates.size()));
      int64_t last = 0;
      for (size_t i = 0; i < dag.gates.size(); ++i) {
        last = std::max(last, r.gate_end[i]);
        for (const int d : dag.gates[i].deps) {
          int64_t need = r.gate_end[static_cast<size_t>(d)];
          if (part.chip_of[static_cast<size_t>(d)] != part.chip_of[i]) {
            need += kTransfer; // at least one full transfer after production
          }
          ASSERT_GE(r.gate_end[i], need)
              << "trial " << trial << " chips " << chips << " gate " << i;
        }
      }
      ASSERT_EQ(r.makespan, last);
      ASSERT_EQ(r.cut_wires, part.cut_wires);
      EXPECT_LE(r.transfers, r.cut_wires);
      if (chips == 1) {
        // The multi-chip scheduler is a strict generalization.
        EXPECT_EQ(r.makespan, r1.makespan);
        EXPECT_EQ(r.transfers, 0);
        EXPECT_EQ(r.transfer_busy_cycles, 0);
      }
    }
  }
}

TEST(MultiChipFuzz, HeterogeneousCapacityPartitionsRespectCaps) {
  // Explicit per-chip capacity shares: the partitioner must honor the tight
  // per-chip load caps it derives from them, on top of the usual invariants
  // (completeness, chip-monotone edges, exact cut accounting).
  Rng rng = test::test_rng(0x4E7C);
  for (int trial = 0; trial < 60; ++trial) {
    const sim::GateDag dag = random_dag(rng, 40);
    const int chips = rng.uniform_below(2) ? 4 : 2;
    sim::PartitionOptions opt;
    for (int c = 0; c < chips; ++c) {
      opt.chip_capacity.push_back(1.0 + rng.uniform_below(3)); // 1x..3x
    }
    const sim::GateDagPartition part =
        sim::partition_gate_dag(dag, chips, opt);
    ASSERT_EQ(part.num_chips, chips);
    ASSERT_EQ(part.chip_of.size(), dag.gates.size());
    ASSERT_EQ(part.chip_load_cap.size(), static_cast<size_t>(chips));
    std::vector<int64_t> load(static_cast<size_t>(chips), 0);
    int64_t cut = 0;
    for (size_t i = 0; i < dag.gates.size(); ++i) {
      ASSERT_GE(part.chip_of[i], 0);
      ASSERT_LT(part.chip_of[i], chips);
      load[static_cast<size_t>(part.chip_of[i])] += dag.gates[i].bootstraps;
      for (const int d : dag.gates[i].deps) {
        ASSERT_LE(part.chip_of[static_cast<size_t>(d)], part.chip_of[i])
            << "trial " << trial;
        cut += part.chip_of[static_cast<size_t>(d)] != part.chip_of[i];
      }
    }
    ASSERT_EQ(load, part.chip_bootstraps);
    ASSERT_EQ(cut, part.cut_wires);
    for (int c = 0; c < chips; ++c) {
      ASSERT_LE(part.chip_bootstraps[static_cast<size_t>(c)],
                part.chip_load_cap[static_cast<size_t>(c)])
          << "trial " << trial << " chip " << c;
    }
  }
}

TEST(MultiChipFuzz, DegenerateChipCountsShrinkToNonEmptyChips) {
  // More chips than bootstrap-bearing gates: the partition must report fewer
  // used chips rather than inventing empty shards that would stall the
  // schedule, and every chip id must stay in range.
  Rng rng = test::test_rng(0xDE6E);
  for (int trial = 0; trial < 60; ++trial) {
    const sim::GateDag dag = random_dag(rng, 6);
    int64_t weighted = 0;
    for (const auto& g : dag.gates) weighted += g.bootstraps > 0;
    for (const int chips : {4, 8}) {
      const sim::GateDagPartition part = sim::partition_gate_dag(dag, chips);
      ASSERT_EQ(part.num_chips, chips);
      int nonempty = 0;
      for (int c = 0; c < chips; ++c) {
        nonempty += part.chip_bootstraps[static_cast<size_t>(c)] > 0;
      }
      const int64_t expect_max = std::max<int64_t>(1, weighted);
      EXPECT_LE(part.used_chips, expect_max) << "trial " << trial;
      EXPECT_LE(nonempty, part.used_chips);
      for (size_t i = 0; i < dag.gates.size(); ++i) {
        ASSERT_GE(part.chip_of[i], 0);
        ASSERT_LT(part.chip_of[i], chips);
      }
    }
  }
}

TEST(MultiChipFuzz, PinnedWireNodesStayWithAnchorWhenWindowAllows) {
  // Zero-bootstrap wire nodes carrying a pin must land on their anchor's
  // chip unless edge monotonicity forbids it (a dep already sits on a later
  // chip, or a consumer on an earlier one).
  Rng rng = test::test_rng(0xF13D);
  for (int trial = 0; trial < 60; ++trial) {
    sim::GateDag dag = random_dag(rng, 40);
    for (auto& g : dag.gates) {
      if (g.bootstraps == 0 && !g.deps.empty() && rng.uniform_below(2)) {
        g.pin = g.deps.front();
      }
    }
    for (const int chips : {2, 4}) {
      const sim::GateDagPartition part = sim::partition_gate_dag(
          dag, chips, sim::PartitionOptions{});
      // Consumer chip windows for the post-hoc check.
      std::vector<int> min_user(dag.gates.size(), chips - 1);
      for (size_t i = 0; i < dag.gates.size(); ++i) {
        for (const int d : dag.gates[i].deps) {
          auto& mu = min_user[static_cast<size_t>(d)];
          mu = std::min(mu, part.chip_of[i]);
        }
      }
      for (size_t i = 0; i < dag.gates.size(); ++i) {
        const auto& g = dag.gates[i];
        if (g.pin < 0) continue;
        const int anchor = part.chip_of[static_cast<size_t>(g.pin)];
        if (part.chip_of[i] == anchor) continue;
        // Separation is only legal when co-location would break
        // monotonicity against some neighbor of the wire node.
        int max_dep = 0;
        for (const int d : g.deps) {
          max_dep = std::max(max_dep, part.chip_of[static_cast<size_t>(d)]);
        }
        EXPECT_TRUE(anchor < max_dep || anchor > min_user[i])
            << "trial " << trial << " chips " << chips << " node " << i
            << ": pinned wire node separated from its anchor";
      }
    }
  }
}

TEST(MultiChipFuzz, ReplicateGateDagIsDisjointCopies) {
  Rng rng = test::test_rng(0x4E91);
  sim::GateDag c = random_dag(rng, 20);
  c.gates.back().pin = 0;
  const int n = static_cast<int>(c.gates.size());
  const sim::GateDag batch = sim::replicate_gate_dag(c, 3);
  ASSERT_EQ(batch.gates.size(), static_cast<size_t>(3 * n));
  EXPECT_EQ(batch.total_bootstraps(), 3 * c.total_bootstraps());
  // Depth is per item: independent copies never lengthen the critical path.
  EXPECT_EQ(batch.critical_path_bootstraps(), c.critical_path_bootstraps());
  for (int k = 0; k < 3; ++k) {
    for (int i = 0; i < n; ++i) {
      const auto& src = c.gates[static_cast<size_t>(i)];
      const auto& dst = batch.gates[static_cast<size_t>(k * n + i)];
      EXPECT_EQ(dst.bootstraps, src.bootstraps);
      EXPECT_EQ(dst.pin, src.pin < 0 ? -1 : src.pin + k * n);
      ASSERT_EQ(dst.deps.size(), src.deps.size());
      for (size_t j = 0; j < src.deps.size(); ++j) {
        EXPECT_EQ(dst.deps[j], src.deps[j] + k * n); // stays inside copy k
      }
    }
  }
}

TEST(MultiChip, BundleValueCrossesOncePerDestinationChip) {
  // Three consumers of the same produced value on one remote chip (the
  // multi-output LUT bundle shape after sim_bridge merges kLutOut nodes):
  // three cut wires, ONE link transfer -- the value is sent once and reused.
  sim::SimParams p;
  p.tfhe = TfheParams::security110();
  p.unroll_m = 1;
  const sim::Dfg dfg = sim::build_bootstrap_dfg(p);

  sim::GateDag dag;
  dag.gates.resize(4);
  dag.gates[1].deps = {0};
  dag.gates[2].deps = {0};
  dag.gates[3].deps = {0};
  sim::GateDagPartition part;
  part.num_chips = 2;
  part.used_chips = 2;
  part.chip_of = {0, 1, 1, 1};
  part.chip_bootstraps = {1, 3};
  part.chip_load_cap = {4, 4};
  part.cut_wires = 3;
  constexpr int64_t kTransfer = 1000;
  const auto r = sim::schedule_gate_dag_multichip(dfg, dag, part,
                                                  p.hw.pipelines, kTransfer);
  EXPECT_EQ(r.cut_wires, 3);
  EXPECT_EQ(r.transfers, 1);
  EXPECT_EQ(r.transfer_busy_cycles, kTransfer);
  // Every consumer still waits for the (single) transfer to land.
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(r.gate_end[static_cast<size_t>(i)],
              r.gate_end[0] + kTransfer);
  }
}

TEST(MultiChip, DroppedTransferIsRetransmittedAndAccounted) {
  // An injected inter-chip link drop (fault::kSiteInterchipDrop, armed-only)
  // models a lost send: the link cycles are spent, the value never arrives,
  // and the schedule pays a full retransmission before any consumer starts.
  if (!fault::compiled_in()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  sim::SimParams p;
  p.tfhe = TfheParams::security110();
  p.unroll_m = 1;
  const sim::Dfg dfg = sim::build_bootstrap_dfg(p);

  sim::GateDag dag;
  dag.gates.resize(4);
  dag.gates[1].deps = {0};
  dag.gates[2].deps = {0};
  dag.gates[3].deps = {0};
  sim::GateDagPartition part;
  part.num_chips = 2;
  part.used_chips = 2;
  part.chip_of = {0, 1, 1, 1};
  part.chip_bootstraps = {1, 3};
  part.chip_load_cap = {4, 4};
  part.cut_wires = 3;
  constexpr int64_t kTransfer = 1000;

  fault::Registry::instance().reset();
  const auto clean = sim::schedule_gate_dag_multichip(dfg, dag, part,
                                                      p.hw.pipelines, kTransfer);
  ASSERT_EQ(clean.dropped_transfers, 0);

  fault::Registry::instance().arm(fault::kSiteInterchipDrop);
  const auto dropped = sim::schedule_gate_dag_multichip(
      dfg, dag, part, p.hw.pipelines, kTransfer);
  fault::Registry::instance().reset();

  EXPECT_EQ(dropped.dropped_transfers, 1);
  EXPECT_EQ(dropped.transfers, clean.transfers + 1);
  EXPECT_EQ(dropped.transfer_busy_cycles, clean.transfer_busy_cycles + kTransfer);
  // Consumers see the value only after the retransmission lands.
  for (int i = 1; i < 4; ++i) {
    EXPECT_GE(dropped.gate_end[static_cast<size_t>(i)],
              clean.gate_end[static_cast<size_t>(i)] + kTransfer);
  }
  EXPECT_GE(dropped.makespan, clean.makespan + kTransfer);
}

TEST(MultiChipPolicy, VariantsBitIdenticalAndChosenIsMinimal) {
  // Every replicate/shard/hybrid variant schedules the same replicated batch
  // DAG, so bootstrap counts must be bit-identical across policies; the
  // chosen plan must be the variant with the smallest true makespan; and a
  // pure-replicate placement never touches the inter-chip link.
  sim::SimParams p;
  p.tfhe = TfheParams::security110();
  p.unroll_m = 1;
  const sim::Dfg dfg = sim::build_bootstrap_dfg(p);

  Rng rng = test::test_rng(0xB17C);
  for (int trial = 0; trial < 4; ++trial) {
    const sim::GateDag circuit = random_dag(rng, 12);
    const int n = static_cast<int>(circuit.gates.size());
    constexpr std::pair<int, int> kShapes[] = {
        {1, 2}, {2, 2}, {2, 4}, {3, 4}, {4, 4}};
    for (const auto& [batch, chips] : kShapes) {
      sim::BatchPlanRequest req;
      req.dfg = &dfg;
      req.circuit = &circuit;
      req.batch = batch;
      req.num_chips = chips;
      req.pipelines = p.hw.pipelines;
      req.transfer_cycles = 1000;
      const sim::BatchPlan plan = sim::plan_batch_schedule(req);

      ASSERT_EQ(plan.batch_dag.gates.size(),
                static_cast<size_t>(batch) * static_cast<size_t>(n));
      const int64_t expect_bs = batch * circuit.total_bootstraps();
      ASSERT_FALSE(plan.considered.empty());
      int64_t best = plan.considered.front().makespan;
      for (const sim::BatchPlanVariant& v : plan.considered) {
        EXPECT_EQ(v.total_bootstraps, expect_bs)
            << "trial " << trial << " batch " << batch << " chips " << chips
            << " G=" << v.replica_groups;
        EXPECT_EQ(v.replica_groups * v.group_size, chips);
        if (v.policy == sim::BatchPolicy::kReplicate && chips > 1) {
          EXPECT_EQ(v.transfers, 0); // whole items per chip: link untouched
        }
        best = std::min(best, v.makespan);
      }
      EXPECT_EQ(plan.schedule.makespan, best)
          << "trial " << trial << " batch " << batch << " chips " << chips;
      // The chosen partition covers the whole batch DAG.
      ASSERT_EQ(plan.partition.chip_of.size(), plan.batch_dag.gates.size());
      int64_t placed = 0;
      for (const int64_t l : plan.partition.chip_bootstraps) placed += l;
      EXPECT_EQ(placed, expect_bs);
    }
  }
}

TEST(MultiChip, TwoChipsBeatOneOnAWideCircuit) {
  // The acceptance-bar shape: a wide multiplier bundle at m=3 is HBM-bound
  // on one chip; a second chip doubles the HBM streams and must win outright
  // despite paying for cross-shard transfers.
  const TfheParams params = TfheParams::security110();
  const sim::Netlist n = sim::array_multiplier_netlist(8);
  sim::GateDag dag;
  dag.gates.resize(n.deps.size());
  for (size_t i = 0; i < n.deps.size(); ++i) dag.gates[i].deps = n.deps[i];
  const auto r1 = sim::simulate_circuit_multichip(params, 3, dag, 1);
  const auto r2 = sim::simulate_circuit_multichip(params, 3, dag, 2);
  EXPECT_LT(r2.time_ms, r1.time_ms);
  EXPECT_GT(r2.cut_wires, 0);
  EXPECT_GT(r2.transfers, 0);
  EXPECT_EQ(r2.chip_occupancy.size(), 2u);
  // And the single-chip entry point agrees with simulate_circuit.
  const auto legacy = sim::simulate_circuit(params, 3, dag);
  EXPECT_DOUBLE_EQ(r1.time_ms, legacy.time_ms);
}

} // namespace
} // namespace matcha
