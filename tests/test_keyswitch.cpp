#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace matcha {
namespace {

using test::shared_keys;

TEST(KeySwitch, PreservesMessage) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(1);
  for (double m : {0.125, -0.125, 0.25, 0.0, 0.375}) {
    const Torus32 mu = double_to_torus32(m);
    const LweSample in =
        lwe_encrypt(K.sk.extracted, mu, K.params.ring.sigma, rng);
    const LweSample out = key_switch(K.ck1.ks, in);
    EXPECT_EQ(out.n(), K.params.lwe.n);
    EXPECT_LE(torus_distance(lwe_phase(K.sk.lwe, out), mu), 5e-3) << m;
  }
}

TEST(KeySwitch, NoiseWithinAnalyticBound) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(2);
  const int trials = 100;
  double sum2 = 0;
  for (int i = 0; i < trials; ++i) {
    const LweSample in = lwe_encrypt(K.sk.extracted, 0, 1e-9, rng);
    const LweSample out = key_switch(K.ck1.ks, in);
    const double e = torus32_to_double(lwe_phase(K.sk.lwe, out));
    sum2 += e * e;
  }
  const double std_meas = std::sqrt(sum2 / trials);
  // sigma_ks * sqrt(N * t) plus truncation.
  const double bound = K.params.ks.sigma *
                           std::sqrt(static_cast<double>(K.params.ring.n_ring) *
                                     K.params.ks.t) * 2.0 +
                       1e-4;
  EXPECT_LE(std_meas, bound);
  EXPECT_GT(std_meas, 0.0);
}

TEST(KeySwitch, LinearOverAddition) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(3);
  const Torus32 m1 = double_to_torus32(0.0625), m2 = double_to_torus32(0.125);
  const LweSample c1 = lwe_encrypt(K.sk.extracted, m1, K.params.ring.sigma, rng);
  const LweSample c2 = lwe_encrypt(K.sk.extracted, m2, K.params.ring.sigma, rng);
  const LweSample sum_then_switch = key_switch(K.ck1.ks, c1 + c2);
  EXPECT_LE(torus_distance(lwe_phase(K.sk.lwe, sum_then_switch), m1 + m2), 5e-3);
}

TEST(KeySwitch, TableShapeAndPlaceholders) {
  const auto& K = shared_keys();
  const auto& ks = K.ck1.ks;
  EXPECT_EQ(ks.n_in, K.params.ring.n_ring);
  EXPECT_EQ(ks.n_out, K.params.lwe.n);
  EXPECT_EQ(ks.table.size(),
            static_cast<size_t>(ks.n_in) * ks.params.t * ks.params.base());
  // v = 0 placeholders are all-zero trivial samples.
  const LweSample& z = ks.at(5, 2, 0);
  EXPECT_EQ(z.b, 0u);
  for (Torus32 a : z.a) EXPECT_EQ(a, 0u);
}

class KsParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {}; // basebit, t

TEST_P(KsParamSweep, MessagePreservedAcrossParameterSpace) {
  const auto [basebit, t] = GetParam();
  if (basebit * t > 32) GTEST_SKIP() << "decomposition deeper than the torus";
  const auto& K = shared_keys();
  Rng rng = test::test_rng(100 + basebit * 16 + t);
  const KeySwitchParams p{.basebit = basebit, .t = t, .sigma = 3.05e-5};
  const KeySwitchKey ks = make_keyswitch_key(K.sk.extracted, K.sk.lwe, p, rng);
  // Precision: base^t must cover enough torus bits for a 1/8 message.
  const double trunc_noise = std::pow(2.0, -(basebit * t));
  for (double m : {0.125, -0.125, 0.25}) {
    const Torus32 mu = double_to_torus32(m);
    const LweSample in =
        lwe_encrypt(K.sk.extracted, mu, K.params.ring.sigma, rng);
    const LweSample out = key_switch(ks, in);
    const double err = torus_distance(lwe_phase(K.sk.lwe, out), mu);
    EXPECT_LE(err, 0.01 + trunc_noise * K.params.ring.n_ring) << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Params, KsParamSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(4, 6, 8, 10)));

TEST(KeySwitch, TableEntriesEncryptScaledKeyBits) {
  const auto& K = shared_keys();
  const auto& ks = K.ck1.ks;
  for (int i : {0, 17, 100}) {
    for (int j : {0, 3}) {
      for (uint32_t v : {1u, 3u}) {
        const Torus32 expect =
            v * static_cast<Torus32>(K.sk.extracted.s[i]) *
            (1u << (32 - (j + 1) * ks.params.basebit));
        EXPECT_LE(torus_distance(lwe_phase(K.sk.lwe, ks.at(i, j, v)), expect),
                  1e-3);
      }
    }
  }
}

} // namespace
} // namespace matcha
