// Key switch: message preservation and noise across the parameter space,
// plus the PR-6 bandwidth-engineering contracts -- SoA arena shape (no
// placeholder rows), batched-vs-sequential bit-identity, reference-loop
// equivalence of the streaming accumulate, and dispatch-level agreement for
// the integer keyswitch kernels (scalar / AVX2 / AVX-512 / NEON).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "test_util.h"

namespace matcha {
namespace {

using test::shared_keys;

TEST(KeySwitch, PreservesMessage) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(1);
  for (double m : {0.125, -0.125, 0.25, 0.0, 0.375}) {
    const Torus32 mu = double_to_torus32(m);
    const LweSample in =
        lwe_encrypt(K.sk.extracted, mu, K.params.ring.sigma, rng);
    const LweSample out = key_switch(K.ck1.ks, in);
    EXPECT_EQ(out.n(), K.params.lwe.n);
    EXPECT_LE(torus_distance(lwe_phase(K.sk.lwe, out), mu), 5e-3) << m;
  }
}

TEST(KeySwitch, NoiseWithinAnalyticBound) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(2);
  const int trials = 100;
  double sum2 = 0;
  for (int i = 0; i < trials; ++i) {
    const LweSample in = lwe_encrypt(K.sk.extracted, 0, 1e-9, rng);
    const LweSample out = key_switch(K.ck1.ks, in);
    const double e = torus32_to_double(lwe_phase(K.sk.lwe, out));
    sum2 += e * e;
  }
  const double std_meas = std::sqrt(sum2 / trials);
  // sigma_ks * sqrt(N * t) plus truncation.
  const double bound = K.params.ks.sigma *
                           std::sqrt(static_cast<double>(K.params.ring.n_ring) *
                                     K.params.ks.t) * 2.0 +
                       1e-4;
  EXPECT_LE(std_meas, bound);
  EXPECT_GT(std_meas, 0.0);
}

TEST(KeySwitch, LinearOverAddition) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(3);
  const Torus32 m1 = double_to_torus32(0.0625), m2 = double_to_torus32(0.125);
  const LweSample c1 = lwe_encrypt(K.sk.extracted, m1, K.params.ring.sigma, rng);
  const LweSample c2 = lwe_encrypt(K.sk.extracted, m2, K.params.ring.sigma, rng);
  const LweSample sum_then_switch = key_switch(K.ck1.ks, c1 + c2);
  EXPECT_LE(torus_distance(lwe_phase(K.sk.lwe, sum_then_switch), m1 + m2), 5e-3);
}

TEST(KeySwitch, ArenaShapeHasNoPlaceholderRows) {
  const auto& K = shared_keys();
  const auto& ks = K.ck1.ks;
  EXPECT_EQ(ks.n_in, K.params.ring.n_ring);
  EXPECT_EQ(ks.n_out, K.params.lwe.n);
  EXPECT_EQ(ks.t_used, std::min(ks.params.t, 32 / ks.params.basebit));
  // Only the base-1 real digit values of the live digits are materialized:
  // no v == 0 rows, no rows past the torus LSB.
  const size_t rows = static_cast<size_t>(ks.n_in) * ks.t_used *
                      (ks.params.base() - 1);
  EXPECT_EQ(ks.b_plane.size(), rows);
  EXPECT_EQ(ks.a_plane.size(), rows * static_cast<size_t>(ks.n_out));
  EXPECT_EQ(ks.rows(), static_cast<int>(rows));
  EXPECT_EQ(ks.key_bytes(),
            (ks.a_plane.size() + ks.b_plane.size()) * sizeof(Torus32));
  // The arenas feed the SIMD streaming subtract; they must be 64B-aligned.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ks.a_plane.data()) % kSpectralAlign,
            0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ks.b_plane.data()) % kSpectralAlign,
            0u);
}

class KsParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {}; // basebit, t

TEST_P(KsParamSweep, MessagePreservedAcrossParameterSpace) {
  const auto [basebit, t] = GetParam();
  const auto& K = shared_keys();
  Rng rng = test::test_rng(100 + basebit * 16 + t);
  const KeySwitchParams p{.basebit = basebit, .t = t, .sigma = 3.05e-5};
  const KeySwitchKey ks = make_keyswitch_key(K.sk.extracted, K.sk.lwe, p, rng);
  // Decompositions deeper than the torus truncate to t_used live digits
  // (the dead ones carry no information); precision is what t_used covers.
  const int prec_bits = std::min(32, ks.t_used * basebit);
  const double trunc_noise = std::pow(2.0, -prec_bits);
  for (double m : {0.125, -0.125, 0.25}) {
    const Torus32 mu = double_to_torus32(m);
    const LweSample in =
        lwe_encrypt(K.sk.extracted, mu, K.params.ring.sigma, rng);
    const LweSample out = key_switch(ks, in);
    const double err = torus_distance(lwe_phase(K.sk.lwe, out), mu);
    EXPECT_LE(err, 0.01 + trunc_noise * K.params.ring.n_ring) << m;
  }
}

// basebit=4, t=8 is the exact-32-bit case (PR 4 regression: round_offset
// must not shift by a negative amount); basebit=3, t=12 and basebit=4, t=10
// overrun the torus and exercise the t_used truncation.
INSTANTIATE_TEST_SUITE_P(Params, KsParamSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(4, 6, 8, 10, 12)));

TEST(KeySwitch, RowSamplesEncryptScaledKeyBits) {
  const auto& K = shared_keys();
  const auto& ks = K.ck1.ks;
  for (int i : {0, 17, 100}) {
    for (int j : {0, 3}) {
      for (uint32_t v : {1u, 3u}) {
        const Torus32 expect =
            v * static_cast<Torus32>(K.sk.extracted.s[i]) *
            (1u << (32 - (j + 1) * ks.params.basebit));
        EXPECT_LE(
            torus_distance(lwe_phase(K.sk.lwe, ks.row_sample(i, j, v)), expect),
            1e-3);
      }
    }
  }
}

/// Digit of c.a[i] selected for level j, mirroring the library's rounding
/// contract (offset from the *configured* t, window from t_used).
uint32_t ref_digit(const KeySwitchKey& ks, const LweSample& c, int i, int j) {
  const int prec_bits = ks.params.t * ks.params.basebit;
  const Torus32 off = prec_bits >= 32 ? 0 : 1u << (32 - prec_bits - 1);
  const int shift = 32 - (j + 1) * ks.params.basebit;
  const uint32_t mask = static_cast<uint32_t>(ks.params.base()) - 1;
  return ((c.a[static_cast<size_t>(i)] + off) >> shift) & mask;
}

/// Schoolbook key switch through the row_sample() accessor -- no arenas, no
/// kernels. The streaming/batched paths must match this bit for bit (torus
/// arithmetic is exact mod 2^32).
LweSample reference_key_switch(const KeySwitchKey& ks, const LweSample& c) {
  LweSample out(ks.n_out);
  for (auto& a : out.a) a = 0;
  out.b = c.b;
  for (int j = 0; j < ks.t_used; ++j) {
    for (int i = 0; i < ks.n_in; ++i) {
      const uint32_t v = ref_digit(ks, c, i, j);
      if (v == 0) continue;
      const LweSample row = ks.row_sample(i, j, v);
      for (int k = 0; k < ks.n_out; ++k) {
        out.a[static_cast<size_t>(k)] -= row.a[static_cast<size_t>(k)];
      }
      out.b -= row.b;
    }
  }
  return out;
}

TEST(KeySwitch, StreamingAccumulateMatchesReferenceBitExactly) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(20);
  for (int trial = 0; trial < 4; ++trial) {
    LweSample in(K.ck1.ks.n_in);
    for (auto& a : in.a) a = rng.uniform_torus();
    in.b = rng.uniform_torus();
    const LweSample want = reference_key_switch(K.ck1.ks, in);
    const LweSample got = key_switch(K.ck1.ks, in);
    EXPECT_EQ(got.a, want.a) << "trial " << trial;
    EXPECT_EQ(got.b, want.b) << "trial " << trial;
  }
}

TEST(KeySwitch, BatchedMatchesSequentialBitExactly) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(21);
  KeySwitchWorkspace ws; // reused across batch sizes: must grow, never stale
  for (const int batch : {1, 3, 8, 17}) {
    std::vector<LweSample> in(static_cast<size_t>(batch),
                              LweSample(K.ck1.ks.n_in));
    std::vector<LweSample> want, got(static_cast<size_t>(batch));
    for (auto& c : in) {
      for (auto& a : c.a) a = rng.uniform_torus();
      c.b = rng.uniform_torus();
    }
    for (const auto& c : in) want.push_back(key_switch(K.ck1.ks, c));

    std::vector<const LweSample*> inp;
    std::vector<LweSample*> outp;
    for (int k = 0; k < batch; ++k) {
      inp.push_back(&in[static_cast<size_t>(k)]);
      outp.push_back(&got[static_cast<size_t>(k)]);
    }
    key_switch_batch(K.ck1.ks, inp.data(), outp.data(), batch, ws);
    for (int k = 0; k < batch; ++k) {
      EXPECT_EQ(got[static_cast<size_t>(k)].a, want[static_cast<size_t>(k)].a)
          << "batch " << batch << " sample " << k;
      EXPECT_EQ(got[static_cast<size_t>(k)].b, want[static_cast<size_t>(k)].b)
          << "batch " << batch << " sample " << k;
    }
  }
}

TEST(KeySwitch, DispatchLevelsBitIdentical) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(22);
  const int batch = 5;
  std::vector<LweSample> in(batch, LweSample(K.ck1.ks.n_in));
  for (auto& c : in) {
    for (auto& a : c.a) a = rng.uniform_torus();
    c.b = rng.uniform_torus();
  }
  std::vector<const LweSample*> inp;
  for (const auto& c : in) inp.push_back(&c);

  // Scalar is the reference; every level the host can execute must agree,
  // one sample at a time and batched.
  std::vector<LweSample> want(batch, LweSample(0));
  for (int k = 0; k < batch; ++k) {
    key_switch_into(K.ck1.ks, in[static_cast<size_t>(k)],
                    want[static_cast<size_t>(k)], SimdLevel::kScalar);
  }
  for (const SimdLevel level :
       {SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    if (!simd_level_available(level)) {
      GTEST_LOG_(INFO) << "skipping " << simd_level_name(level)
                       << ": host cannot execute it";
      continue;
    }
    LweSample one(0);
    for (int k = 0; k < batch; ++k) {
      key_switch_into(K.ck1.ks, in[static_cast<size_t>(k)], one, level);
      EXPECT_EQ(one.a, want[static_cast<size_t>(k)].a)
          << simd_level_name(level) << " sample " << k;
      EXPECT_EQ(one.b, want[static_cast<size_t>(k)].b)
          << simd_level_name(level) << " sample " << k;
    }
    std::vector<LweSample> got(batch, LweSample(0));
    std::vector<LweSample*> outp;
    for (auto& c : got) outp.push_back(&c);
    KeySwitchWorkspace ws;
    key_switch_batch(K.ck1.ks, inp.data(), outp.data(), batch, ws, level);
    for (int k = 0; k < batch; ++k) {
      EXPECT_EQ(got[static_cast<size_t>(k)].a, want[static_cast<size_t>(k)].a)
          << simd_level_name(level) << " batched sample " << k;
      EXPECT_EQ(got[static_cast<size_t>(k)].b, want[static_cast<size_t>(k)].b)
          << simd_level_name(level) << " batched sample " << k;
    }
  }
}

} // namespace
} // namespace matcha
