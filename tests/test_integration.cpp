// End-to-end integration: full-size 110-bit parameters through the whole
// stack (keygen -> cloud keys -> device load -> gates -> decrypt), plus a
// multi-gate circuit and a cross-engine consistency sweep at test parameters.
#include <gtest/gtest.h>

#include "noise/measure.h"
#include "test_util.h"

namespace matcha {
namespace {

using test::shared_keys;

TEST(Integration, FullSizeParamsEndToEnd) {
  Rng rng(101);
  const TfheParams p = TfheParams::security110();
  const SecretKeyset sk = SecretKeyset::generate(p, rng);
  const CloudKeyset ck = make_cloud_keyset(sk, 2, rng);

  DoubleFftEngine deng(p.ring.n_ring);
  const auto dkd = load_device_keyset(deng, ck);
  auto evd = dkd.make_evaluator(deng, p.mu());

  LiftFftEngine leng(p.ring.n_ring, 64);
  const auto dkl = load_device_keyset(leng, ck);
  auto evl = dkl.make_evaluator(leng, p.mu());

  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      const LweSample ca = sk.encrypt_bit(a, rng);
      const LweSample cb = sk.encrypt_bit(b, rng);
      EXPECT_EQ(sk.decrypt_bit(evd.gate_nand(ca, cb)), !(a && b))
          << "double " << a << b;
      EXPECT_EQ(sk.decrypt_bit(evl.gate_nand(ca, cb)), !(a && b))
          << "lift " << a << b;
    }
  }
}

TEST(Integration, FullAdderCircuitTestParams) {
  const auto& K = shared_keys();
  Rng rng = test::test_rng(7);
  const auto dk = load_device_keyset(K.deng, K.ck2);
  auto ev = dk.make_evaluator(K.deng, K.params.mu());

  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int cin = 0; cin <= 1; ++cin) {
        const LweSample ca = K.sk.encrypt_bit(a, rng);
        const LweSample cb = K.sk.encrypt_bit(b, rng);
        const LweSample cc = K.sk.encrypt_bit(cin, rng);
        const LweSample axb = ev.gate_xor(ca, cb);
        const LweSample sum = ev.gate_xor(axb, cc);
        const LweSample carry =
            ev.gate_or(ev.gate_and(ca, cb), ev.gate_and(cc, axb));
        EXPECT_EQ(K.sk.decrypt_bit(sum), a ^ b ^ cin);
        EXPECT_EQ(K.sk.decrypt_bit(carry), (a + b + cin) >= 2);
      }
    }
  }
}

TEST(Integration, DecryptionFailureSweepAcrossTwiddleBits) {
  // Scaled-down version of the paper's 10^8-gate failure test: at adequate
  // DVQTF widths there must be zero failures; at pathologically low widths
  // the gates break (showing the test has teeth).
  const auto& K = shared_keys();
  Rng rng = test::test_rng(8);
  for (int bits : {28, 40}) {
    LiftFftEngine eng(K.params.ring.n_ring, bits);
    const auto dk = load_device_keyset(eng, K.ck2);
    auto ev = dk.make_evaluator(eng, K.params.mu());
    const auto st = noise::measure_gate_noise(K.sk, ev, 60, rng);
    EXPECT_EQ(st.failures, 0) << bits;
  }
  {
    LiftFftEngine eng(K.params.ring.n_ring, 7);
    const auto dk = load_device_keyset(eng, K.ck2);
    auto ev = dk.make_evaluator(eng, K.params.mu());
    const auto st = noise::measure_gate_noise(K.sk, ev, 30, rng);
    EXPECT_GT(st.failures, 0);
  }
}

TEST(Integration, HigherUnrollNeedsMorePrecision) {
  // Table 3's punchline: larger m leaves less budget for FFT error. At a
  // borderline twiddle width, m=3 must show more phase noise than m=1.
  const auto& K = shared_keys();
  Rng rng = test::test_rng(9);
  LiftFftEngine eng(K.params.ring.n_ring, 18);
  const auto dk1 = load_device_keyset(eng, K.ck1);
  auto ev1 = dk1.make_evaluator(eng, K.params.mu());
  const auto s1 = noise::measure_gate_noise(K.sk, ev1, 40, rng);
  const auto dk3 = load_device_keyset(eng, K.ck3);
  auto ev3 = dk3.make_evaluator(eng, K.params.mu());
  const auto s3 = noise::measure_gate_noise(K.sk, ev3, 40, rng);
  EXPECT_GT(s3.stddev, s1.stddev * 0.8); // bundle has more key material
}

TEST(Integration, AggressiveUnrollM5WithWideTwiddles) {
  // The paper's most aggressive point: m = 5 needs 64-bit DVQTFs. Verify the
  // whole stack handles m = 5 (31 TGSW per group) and that gates decrypt
  // correctly with the wide twiddles.
  const auto& K = shared_keys();
  Rng rng = test::test_rng(10);
  const CloudKeyset ck5 = make_cloud_keyset(K.sk, 5, rng);
  EXPECT_EQ(ck5.bk.groups[0].size(), 31u);
  LiftFftEngine eng(K.params.ring.n_ring, 64);
  const auto dk = load_device_keyset(eng, ck5);
  auto ev = dk.make_evaluator(eng, K.params.mu());
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      const LweSample ca = K.sk.encrypt_bit(a, rng);
      const LweSample cb = K.sk.encrypt_bit(b, rng);
      EXPECT_EQ(K.sk.decrypt_bit(ev.gate_nand(ca, cb)), !(a && b)) << a << b;
      EXPECT_EQ(K.sk.decrypt_bit(ev.gate_xor(ca, cb)), a ^ b) << a << b;
    }
  }
}

TEST(Integration, SharedKeysConsistency) {
  const auto& K = shared_keys();
  EXPECT_EQ(K.ck1.bk.unroll_m, 1);
  EXPECT_EQ(K.ck2.bk.unroll_m, 2);
  EXPECT_EQ(K.ck3.bk.unroll_m, 3);
  EXPECT_EQ(K.deng.ring_n(), K.params.ring.n_ring);
  EXPECT_EQ(K.leng.twiddle_bits(), 40);
}

} // namespace
} // namespace matcha
