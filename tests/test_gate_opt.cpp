// The GateGraph optimization pipeline: constant folding, common-subexpression
// elimination, and dead-gate elimination must preserve circuit semantics --
// CSE/DCE bit-for-bit (deduplicated gates recompute the identical
// deterministic bootstrap; dead gates feed no output), constant folding up to
// plaintext equality (a folded gate skips its bootstrap entirely). Plus the
// sim bridge: the optimized DAG's shape as the chip scheduler sees it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "circuits/word.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "exec/sim_bridge.h"
#include "test_util.h"

namespace matcha {
namespace {

using circuits::EncWord;
using exec::BatchExecutor;
using exec::BatchResult;
using exec::CircuitBuilder;
using exec::CompiledGraph;
using exec::GateGraph;
using exec::OptimizeOptions;
using exec::SymWord;
using exec::SymWordCircuits;
using exec::Wire;
using test::shared_keys;

std::unique_ptr<DoubleFftEngine> make_engine() {
  return std::make_unique<DoubleFftEngine>(shared_keys().params.ring.n_ring);
}

bool same_sample(const LweSample& x, const LweSample& y) {
  return x.a == y.a && x.b == y.b;
}

bool eval_plain(GateKind kind, bool a, bool b, bool c = false) {
  switch (kind) {
    case GateKind::kNand: return !(a && b);
    case GateKind::kAnd: return a && b;
    case GateKind::kOr: return a || b;
    case GateKind::kNor: return !(a || b);
    case GateKind::kXor: return a != b;
    case GateKind::kXnor: return a == b;
    case GateKind::kNot: return !a;
    case GateKind::kMux: return a ? b : c;
    case GateKind::kFreeOr: return a || b;
    case GateKind::kLut:
    case GateKind::kLutOut:
      break; // not constructed by these tests
  }
  return false;
}

constexpr GateKind kBinaryKinds[] = {GateKind::kNand, GateKind::kAnd,
                                     GateKind::kOr,   GateKind::kNor,
                                     GateKind::kXor,  GateKind::kXnor};

TEST(ConstantFolding, FullyConstantGatesBecomeConstants) {
  // Every binary kind over every constant pair reduces to its truth table.
  for (const GateKind kind : kBinaryKinds) {
    for (int va = 0; va <= 1; ++va) {
      for (int vb = 0; vb <= 1; ++vb) {
        GateGraph g;
        const Wire a = g.add_const(va != 0), b = g.add_const(vb != 0);
        const Wire out = g.add_gate(kind, a, b);
        g.mark_output(out);
        const CompiledGraph c = CompiledGraph::compile(g);
        const Wire mapped = c.remap(out);
        ASSERT_TRUE(mapped.valid());
        const auto& n = c.graph.nodes()[mapped.id];
        EXPECT_TRUE(n.is_const) << gate_name(kind) << va << vb;
        EXPECT_EQ(n.const_value, eval_plain(kind, va != 0, vb != 0));
        EXPECT_EQ(c.graph.num_gates(), 0);
        EXPECT_EQ(c.stats.folded, 1);
      }
    }
  }
}

TEST(ConstantFolding, IdentityAndAbsorptionWithOneConstant) {
  struct Case {
    GateKind kind;
    bool konst;
    enum { kAliasX, kNotX, kConstF, kConstT } expect;
  };
  const Case cases[] = {
      {GateKind::kAnd, true, Case::kAliasX},
      {GateKind::kAnd, false, Case::kConstF},
      {GateKind::kNand, true, Case::kNotX},
      {GateKind::kNand, false, Case::kConstT},
      {GateKind::kOr, false, Case::kAliasX},
      {GateKind::kOr, true, Case::kConstT},
      {GateKind::kNor, false, Case::kNotX},
      {GateKind::kNor, true, Case::kConstF},
      {GateKind::kXor, false, Case::kAliasX},
      {GateKind::kXor, true, Case::kNotX},
      {GateKind::kXnor, true, Case::kAliasX},
      {GateKind::kXnor, false, Case::kNotX},
  };
  for (const Case& tc : cases) {
    for (const bool const_first : {false, true}) {
      GateGraph g;
      const Wire x = g.add_input();
      const Wire k = g.add_const(tc.konst);
      const Wire out = const_first ? g.add_gate(tc.kind, k, x)
                                   : g.add_gate(tc.kind, x, k);
      g.mark_output(out);
      const CompiledGraph c = CompiledGraph::compile(g);
      const Wire mapped = c.remap(out);
      ASSERT_TRUE(mapped.valid()) << gate_name(tc.kind);
      const auto& n = c.graph.nodes()[mapped.id];
      switch (tc.expect) {
        case Case::kAliasX:
          EXPECT_TRUE(n.is_input) << gate_name(tc.kind);
          break;
        case Case::kNotX:
          ASSERT_TRUE(n.is_gate()) << gate_name(tc.kind);
          EXPECT_EQ(n.kind, GateKind::kNot);
          EXPECT_TRUE(c.graph.nodes()[n.in[0]].is_input);
          break;
        case Case::kConstF:
        case Case::kConstT:
          ASSERT_TRUE(n.is_const) << gate_name(tc.kind);
          EXPECT_EQ(n.const_value, tc.expect == Case::kConstT);
          break;
      }
      EXPECT_EQ(c.stats.folded, 1) << gate_name(tc.kind);
    }
  }
}

TEST(ConstantFolding, MuxAndNotRules) {
  { // Constant select picks an arm.
    GateGraph g;
    const Wire a = g.add_input(), b = g.add_input();
    const Wire m1 = g.add_gate(GateKind::kMux, g.add_const(true), a, b);
    const Wire m0 = g.add_gate(GateKind::kMux, g.add_const(false), a, b);
    g.mark_output(m1);
    g.mark_output(m0);
    const CompiledGraph c = CompiledGraph::compile(g);
    EXPECT_EQ(c.remap(m1).id, c.remap(a).id);
    EXPECT_EQ(c.remap(m0).id, c.remap(b).id);
    EXPECT_EQ(c.graph.num_gates(), 0);
  }
  { // MUX(s, 1, 0) == s and MUX(s, 0, 1) == NOT s.
    GateGraph g;
    const Wire s = g.add_input();
    const Wire t = g.add_const(true), f = g.add_const(false);
    const Wire id = g.add_gate(GateKind::kMux, s, t, f);
    const Wire inv = g.add_gate(GateKind::kMux, s, f, t);
    g.mark_output(id);
    g.mark_output(inv);
    const CompiledGraph c = CompiledGraph::compile(g);
    EXPECT_EQ(c.remap(id).id, c.remap(s).id);
    const auto& n = c.graph.nodes()[c.remap(inv).id];
    ASSERT_TRUE(n.is_gate());
    EXPECT_EQ(n.kind, GateKind::kNot);
  }
  { // NOT of a constant.
    GateGraph g;
    const Wire out = g.add_gate(GateKind::kNot, g.add_const(false));
    g.mark_output(out);
    const CompiledGraph c = CompiledGraph::compile(g);
    const auto& n = c.graph.nodes()[c.remap(out).id];
    ASSERT_TRUE(n.is_const);
    EXPECT_TRUE(n.const_value);
  }
}

TEST(Cse, CommutedTwinsDeduplicate) {
  GateGraph g;
  const Wire a = g.add_input(), b = g.add_input();
  const Wire x1 = g.add_gate(GateKind::kXor, a, b);
  const Wire x2 = g.add_gate(GateKind::kXor, b, a); // commuted twin
  const Wire x3 = g.add_gate(GateKind::kXor, a, b); // literal twin
  const Wire n1 = g.add_gate(GateKind::kNot, a);
  const Wire n2 = g.add_gate(GateKind::kNot, a);
  g.mark_output(x1);
  g.mark_output(x2);
  g.mark_output(x3);
  g.mark_output(n1);
  g.mark_output(n2);
  const CompiledGraph c = CompiledGraph::compile(g);
  EXPECT_EQ(c.remap(x1).id, c.remap(x2).id);
  EXPECT_EQ(c.remap(x1).id, c.remap(x3).id);
  EXPECT_EQ(c.remap(n1).id, c.remap(n2).id);
  EXPECT_EQ(c.graph.num_gates(), 2); // one XOR + one NOT
  EXPECT_EQ(c.stats.cse_hits, 3);
}

TEST(Cse, MuxIsNotCommutative) {
  GateGraph g;
  const Wire s = g.add_input(), a = g.add_input(), b = g.add_input();
  const Wire m1 = g.add_gate(GateKind::kMux, s, a, b);
  const Wire m2 = g.add_gate(GateKind::kMux, s, b, a); // different circuit
  const Wire m3 = g.add_gate(GateKind::kMux, s, a, b); // true twin
  g.mark_output(m1);
  g.mark_output(m2);
  g.mark_output(m3);
  const CompiledGraph c = CompiledGraph::compile(g);
  EXPECT_NE(c.remap(m1).id, c.remap(m2).id);
  EXPECT_EQ(c.remap(m1).id, c.remap(m3).id);
  EXPECT_EQ(c.graph.num_gates(), 2);
}

TEST(Dce, OnlyTheOutputConeSurvives) {
  GateGraph g;
  const Wire a = g.add_input(), b = g.add_input();
  const Wire live = g.add_gate(GateKind::kAnd, a, b);
  const Wire dead1 = g.add_gate(GateKind::kOr, a, b);
  const Wire dead2 = g.add_gate(GateKind::kXor, dead1, b); // dead chain
  (void)dead2;
  g.mark_output(live);
  const CompiledGraph c = CompiledGraph::compile(g);
  EXPECT_EQ(c.graph.num_gates(), 1);
  EXPECT_EQ(c.stats.dead_removed, 2);
  EXPECT_TRUE(c.remap(live).valid());
  EXPECT_FALSE(c.remap(dead1).valid());
  EXPECT_FALSE(c.remap(dead2).valid());
  // Inputs survive regardless, preserving the run() binding contract.
  EXPECT_EQ(c.graph.num_inputs(), 2);
}

TEST(Dce, NoMarkedOutputsMeansEverythingLives) {
  GateGraph g;
  const Wire a = g.add_input(), b = g.add_input();
  (void)g.add_gate(GateKind::kAnd, a, b);
  (void)g.add_gate(GateKind::kOr, a, b);
  const CompiledGraph c = CompiledGraph::compile(g);
  EXPECT_EQ(c.graph.num_gates(), 2);
  EXPECT_EQ(c.stats.dead_removed, 0);
}

TEST(Optimizer, WordComparatorPairSharesXnorChain) {
  // greater_than and equal over the same words both build XNOR(x_i, y_i)
  // terms -- a real circuit where CSE must fire.
  CircuitBuilder b;
  const SymWord x = b.input_word(4), y = b.input_word(4);
  SymWordCircuits wc(b);
  const Wire gt = wc.greater_than(x, y);
  const Wire eq = wc.equal(x, y);
  b.mark_output(gt);
  b.mark_output(eq);
  const CompiledGraph c = b.compile(OptimizeOptions::bit_preserving());
  EXPECT_GT(c.stats.cse_hits, 0);
  EXPECT_LT(c.graph.num_gates(), b.graph().num_gates());
  EXPECT_LT(c.graph.bootstrap_count(), b.graph().bootstrap_count());
}

TEST(Optimizer, RecordedMultiplierFoldsConstantRows) {
  // The shift-and-add multiplier seeds its accumulator with constant zeros
  // and zero-fills shifted rows: folding must erase a large fraction of the
  // recorded bootstraps.
  CircuitBuilder b;
  const SymWord x = b.input_word(4), y = b.input_word(4);
  SymWordCircuits wc(b);
  const SymWord prod = wc.multiply(x, y);
  b.mark_output(prod);
  const CompiledGraph c = b.compile();
  EXPECT_GT(c.stats.folded, 0);
  EXPECT_LT(c.stats.bootstraps_after, c.stats.bootstraps_before);
  // Wavefronts must cover exactly the surviving gates.
  size_t covered = 0;
  for (const auto& front : c.graph.wavefronts()) covered += front.size();
  EXPECT_EQ(covered, static_cast<size_t>(c.graph.num_gates()));
}

TEST(SimBridge, DagShapeMatchesGraph) {
  CircuitBuilder b;
  const SymWord x = b.input_word(4), y = b.input_word(4);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
  b.mark_output(sum);
  const CompiledGraph c = b.compile();
  const sim::GateDag dag = exec::to_gate_dag(c.graph);
  EXPECT_EQ(dag.gates.size(), static_cast<size_t>(c.graph.num_gates()));
  EXPECT_EQ(dag.total_bootstraps(), c.graph.bootstrap_count());
  // The ripple carry chain forces depth: critical path strictly above 1,
  // at or below the total.
  EXPECT_GT(dag.critical_path_bootstraps(), 1);
  EXPECT_LE(dag.critical_path_bootstraps(), dag.total_bootstraps());
  // Wavefront count of the graph bounds the DAG's critical path in gates.
  EXPECT_LE(static_cast<int64_t>(c.graph.wavefronts().size()),
            dag.total_bootstraps());
}

// ---------------------------------------------------------------------------
// Crypto equivalence: recorded + optimized + wavefront-parallel vs the
// immediate-mode WordCircuits over identical ciphertext inputs.
// ---------------------------------------------------------------------------

TEST(Equivalence, BitPreservingPipelineMatchesImmediateMode) {
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  constexpr int kW = 4;

  CircuitBuilder b;
  const SymWord x = b.input_word(kW), y = b.input_word(kW);
  SymWordCircuits wc(b);
  const SymWord sum = wc.add(x, y, nullptr, /*with_carry_out=*/true);
  const SymWord diff = wc.sub(x, y);
  const Wire gt = wc.greater_than(x, y);
  const Wire eq = wc.equal(x, y);
  b.mark_output(sum);
  b.mark_output(diff);
  b.mark_output(gt);
  b.mark_output(eq);
  const CompiledGraph c = b.compile(OptimizeOptions::bit_preserving());
  EXPECT_LT(c.graph.num_gates(), b.graph().num_gates());

  BatchExecutor<DoubleFftEngine> par(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  BatchExecutor<DoubleFftEngine> seq(make_engine, dk.bk, *dk.ks, K.params.mu(), 1);
  auto ev = dk.make_evaluator(K.deng, K.params.mu());
  circuits::WordCircuits<DoubleFftEngine> iwc(ev);

  Rng value_rng = test::test_rng(31);
  for (int round = 0; round < 3; ++round) {
    const uint64_t vx = value_rng.uniform_below(1u << kW);
    const uint64_t vy = value_rng.uniform_below(1u << kW);
    Rng r1 = test::test_rng(500 + round), r2 = test::test_rng(500 + round),
        r3 = test::test_rng(500 + round);
    const auto enc_inputs = [&](Rng& rng) {
      std::vector<LweSample> in;
      for (const uint64_t v : {vx, vy}) {
        const EncWord e = circuits::encrypt_word(K.sk, v, kW, rng);
        in.insert(in.end(), e.bits.begin(), e.bits.end());
      }
      return in;
    };
    const BatchResult rp = par.run(c.graph, enc_inputs(r1));
    const BatchResult rs = seq.run(c.graph, enc_inputs(r2));
    // Parallel == sequential replay, bit for bit, over every wire.
    ASSERT_EQ(rp.values.size(), rs.values.size());
    for (size_t i = 0; i < rp.values.size(); ++i) {
      ASSERT_TRUE(same_sample(rp.values[i], rs.values[i])) << "wire " << i;
    }

    // Immediate mode over the same ciphertexts.
    const std::vector<LweSample> in = enc_inputs(r3);
    EncWord ex, ey;
    ex.bits.assign(in.begin(), in.begin() + kW);
    ey.bits.assign(in.begin() + kW, in.end());
    const EncWord isum = iwc.add(ex, ey, nullptr, /*with_carry_out=*/true);
    const EncWord idiff = iwc.sub(ex, ey);
    const LweSample igt = iwc.greater_than(ex, ey);
    const LweSample ieq = iwc.equal(ex, ey);
    for (int i = 0; i < isum.width(); ++i) {
      EXPECT_TRUE(same_sample(isum.bits[i], rp.at(c.remap(sum.bits[i]))))
          << "sum bit " << i;
    }
    for (int i = 0; i < idiff.width(); ++i) {
      EXPECT_TRUE(same_sample(idiff.bits[i], rp.at(c.remap(diff.bits[i]))))
          << "diff bit " << i;
    }
    EXPECT_TRUE(same_sample(igt, rp.at(c.remap(gt))));
    EXPECT_TRUE(same_sample(ieq, rp.at(c.remap(eq))));
  }
}

TEST(Equivalence, FullPipelineDecryptsCorrectlyAcrossBatch) {
  // With constant folding on, ciphertexts legitimately differ from the
  // unoptimized circuit (folded gates skip their bootstrap); plaintext
  // results must not. Runs as a 2-item batch to exercise the
  // (item x wavefront slice) task space.
  const auto& K = shared_keys();
  const auto dk = load_device_keyset(K.deng, K.ck2);
  constexpr int kW = 4;

  CircuitBuilder b;
  const SymWord x = b.input_word(kW), y = b.input_word(kW);
  SymWordCircuits wc(b);
  const SymWord prod = wc.multiply(x, y);
  const SymWord shifted = wc.shift_left(x, SymWord{{y.bits[0], y.bits[1]}});
  b.mark_output(prod);
  b.mark_output(shifted);
  const CompiledGraph c = b.compile();
  ASSERT_GT(c.stats.folded, 0);

  BatchExecutor<DoubleFftEngine> ex(make_engine, dk.bk, *dk.ks, K.params.mu(), 4);
  const struct { uint64_t x, y; } cases[] = {{5, 3}, {15, 2}};
  std::vector<std::vector<LweSample>> batch;
  Rng rng = test::test_rng(77);
  for (const auto& tc : cases) {
    std::vector<LweSample> in;
    for (const uint64_t v : {tc.x, tc.y}) {
      const EncWord e = circuits::encrypt_word(K.sk, v, kW, rng);
      in.insert(in.end(), e.bits.begin(), e.bits.end());
    }
    batch.push_back(std::move(in));
  }
  const std::vector<BatchResult> results = ex.run_batch(c.graph, std::move(batch));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(ex.last_stats().items, 2);
  for (size_t i = 0; i < results.size(); ++i) {
    EncWord p, s;
    for (const Wire w : prod.bits) p.bits.push_back(results[i].at(c.remap(w)));
    for (const Wire w : shifted.bits) s.bits.push_back(results[i].at(c.remap(w)));
    EXPECT_EQ(circuits::decrypt_word(K.sk, p),
              (cases[i].x * cases[i].y) & 0xF)
        << "item " << i;
    EXPECT_EQ(circuits::decrypt_word(K.sk, s),
              (cases[i].x << (cases[i].y & 3)) & 0xF)
        << "item " << i;
  }
}

} // namespace
} // namespace matcha
