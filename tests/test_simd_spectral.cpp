// SIMD spectral engine: scalar-vs-SIMD bit-identity on decrypted gate
// outputs, exactness against the schoolbook reference, kernel-level
// equivalence across dispatch levels, alignment of the planar buffers, and
// the counter-scope contract (fig1_breakdown's "other" slice must never go
// negative). Runs under ASan/UBSan in the sanitize CI job, which exercises
// the alignment/aliasing contracts of every kernel level the host supports.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/simd_dispatch.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "fft/simd_fft.h"
#include "test_util.h"

namespace matcha {
namespace {

using exec::BatchExecutor;
using exec::BatchResult;
using exec::CircuitBuilder;
using exec::Wire;

IntPolynomial random_digits(Rng& rng, int n, int amp = 512) {
  IntPolynomial p(n);
  for (auto& c : p.coeffs) c = static_cast<int>(rng.uniform_below(2 * amp)) - amp;
  return p;
}

TorusPolynomial random_torus(Rng& rng, int n) {
  TorusPolynomial p(n);
  for (auto& c : p.coeffs) c = rng.uniform_torus();
  return p;
}

/// The levels this host can actually run: scalar always, plus every vector
/// tier the CPU can execute (an AVX-512 host tests avx2 AND avx512).
std::vector<SimdLevel> testable_levels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  for (const SimdLevel lvl :
       {SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    if (simd_level_available(lvl)) levels.push_back(lvl);
  }
  return levels;
}

// ---- dispatch resolution --------------------------------------------------

TEST(SimdDispatch, ResolveHonorsOverrides) {
  const SimdLevel hw = SimdLevel::kAvx2;
  EXPECT_EQ(resolve_simd_level(nullptr, hw), hw);
  EXPECT_EQ(resolve_simd_level("", hw), hw);
  EXPECT_EQ(resolve_simd_level("native", hw), hw);
  EXPECT_EQ(resolve_simd_level("off", hw), SimdLevel::kScalar);
  EXPECT_EQ(resolve_simd_level("scalar", hw), SimdLevel::kScalar);
  EXPECT_EQ(resolve_simd_level("avx2", hw), SimdLevel::kAvx2);
  // Requesting an ISA the hardware lacks degrades to scalar, never crashes.
  EXPECT_EQ(resolve_simd_level("neon", hw), SimdLevel::kScalar);
  EXPECT_EQ(resolve_simd_level("avx2", SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(resolve_simd_level("bogus", hw), SimdLevel::kScalar);
  // AVX-512 tier: honored on avx512 hardware, pinnable DOWN from it, and an
  // avx512 request on a narrower x86 tier degrades to that tier (never up,
  // never an illegal instruction).
  EXPECT_EQ(resolve_simd_level(nullptr, SimdLevel::kAvx512),
            SimdLevel::kAvx512);
  EXPECT_EQ(resolve_simd_level("avx512", SimdLevel::kAvx512),
            SimdLevel::kAvx512);
  EXPECT_EQ(resolve_simd_level("avx2", SimdLevel::kAvx512), SimdLevel::kAvx2);
  EXPECT_EQ(resolve_simd_level("off", SimdLevel::kAvx512), SimdLevel::kScalar);
  EXPECT_EQ(resolve_simd_level("avx512", SimdLevel::kAvx2), SimdLevel::kAvx2);
  EXPECT_EQ(resolve_simd_level("avx512", SimdLevel::kScalar),
            SimdLevel::kScalar);
  EXPECT_EQ(resolve_simd_level("avx512", SimdLevel::kNeon),
            SimdLevel::kScalar);
}

TEST(SimdDispatch, KernelTableMatchesAvailability) {
  // spectral_kernels() must return the named vtable for every level the host
  // can execute (lower x86 tiers stay runnable on wider hardware) and the
  // scalar set for any level it cannot (e.g. NEON on x86), keeping every
  // SimdLevel constructible.
  const SpectralKernels& scalar = spectral_kernels(SimdLevel::kScalar);
  EXPECT_STREQ(scalar.name, "scalar");
  for (const SimdLevel lvl :
       {SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    if (simd_level_available(lvl)) {
      EXPECT_STREQ(spectral_kernels(lvl).name, simd_level_name(lvl));
    } else {
      EXPECT_STREQ(spectral_kernels(lvl).name, "scalar");
    }
  }
}

// ---- planar layout + alignment -------------------------------------------

TEST(PlanarSpectral, BuffersAreCacheLineAligned) {
  for (const int m : {4, 64, 512}) {
    SpectralP s(m);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.re.data()) % kSpectralAlign, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.im.data()) % kSpectralAlign, 0u);
  }
  SimdFftEngine eng(256);
  ExternalProductWorkspace<SimdFftEngine> ws(eng, GadgetParams{});
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ws.digits.data()) % kSpectralAlign, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(ws.spec.data()) % kSpectralAlign, 0u);
}

TEST(PlanarSpectral, StorageOrderIsAPermutation) {
  for (const int n : {16, 64, 256, 1024, 2048}) {
    const NegacyclicPlan plan(n);
    std::vector<bool> seen(static_cast<size_t>(plan.m), false);
    for (const int32_t f : plan.nat) {
      ASSERT_GE(f, 0);
      ASSERT_LT(f, plan.m);
      EXPECT_FALSE(seen[static_cast<size_t>(f)]);
      seen[static_cast<size_t>(f)] = true;
    }
    for (int k = 0; k < plan.m; ++k) {
      EXPECT_EQ(plan.ft1[static_cast<size_t>(k)],
                4 * plan.nat[static_cast<size_t>(k)] + 1);
    }
  }
}

// ---- exactness against the schoolbook reference ---------------------------

class SimdEngineSweep
    : public ::testing::TestWithParam<std::tuple<int, SimdLevel>> {};

TEST_P(SimdEngineSweep, ProductMatchesSchoolbookExactly) {
  const auto [n, level] = GetParam();
  if (!simd_level_available(level)) {
    GTEST_SKIP() << "host cannot run " << simd_level_name(level);
  }
  Rng rng(3);
  SimdFftEngine eng(n, level);
  const IntPolynomial a = random_digits(rng, n);
  const TorusPolynomial b = random_torus(rng, n);
  TorusPolynomial ref(n);
  negacyclic_multiply_reference(ref, a, b);

  SpectralP sa, sb, acc;
  eng.to_spectral_int(a, sa);
  eng.to_spectral_torus(b, sb);
  eng.acc_init(acc);
  eng.mac(acc, sa, sb);
  TorusPolynomial out(n);
  eng.from_spectral_acc(acc, out);
  EXPECT_EQ(out, ref);
}

TEST_P(SimdEngineSweep, RoundTripIsIdentity) {
  // The bit-exact round trip bounds the engine's spectral error below half a
  // torus LSB -- far inside the fig8_fft_error tolerance for the double
  // engine (its measured error floor is < -250 dB; anything past ~-192 dB
  // would already break this exact test at N = 1024).
  const auto [n, level] = GetParam();
  if (!simd_level_available(level)) {
    GTEST_SKIP() << "host cannot run " << simd_level_name(level);
  }
  Rng rng(4);
  SimdFftEngine eng(n, level);
  const TorusPolynomial p = random_torus(rng, n);
  SpectralP s;
  eng.to_spectral_torus(p, s);
  TorusPolynomial back(n);
  eng.from_spectral_torus(s, back);
  EXPECT_EQ(back, p);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimdEngineSweep,
    ::testing::Combine(::testing::Values(8, 16, 64, 128, 256, 1024),
                       ::testing::Values(SimdLevel::kScalar, SimdLevel::kAvx2,
                                         SimdLevel::kAvx512,
                                         SimdLevel::kNeon)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_" +
             simd_level_name(std::get<1>(info.param));
    });

TEST(SimdEngine, MacAccumulatesMultipleRows) {
  const int n = 256;
  for (const SimdLevel level : testable_levels()) {
    Rng rng(5);
    SimdFftEngine eng(n, level);
    TorusPolynomial ref(n);
    SpectralP acc;
    eng.acc_init(acc);
    for (int r = 0; r < 6; ++r) {
      const IntPolynomial a = random_digits(rng, n);
      const TorusPolynomial b = random_torus(rng, n);
      negacyclic_multiply_add_reference(ref, a, b);
      SpectralP sa, sb;
      eng.to_spectral_int(a, sa);
      eng.to_spectral_torus(b, sb);
      eng.mac(acc, sa, sb);
    }
    TorusPolynomial out(n);
    eng.from_spectral_acc(acc, out);
    EXPECT_EQ(out, ref) << simd_level_name(level);
  }
}

TEST(SimdEngine, RotScaleAddMatchesCoefficientDomain) {
  const int n = 256;
  for (const SimdLevel level : testable_levels()) {
    Rng rng(6);
    SimdFftEngine eng(n, level);
    const TorusPolynomial p = random_torus(rng, n);
    for (int64_t c : {1, 5, 100, 255, 256, 300, 511, -3, -511}) {
      SpectralP sp, dst(n / 2);
      eng.to_spectral_torus(p, sp);
      dst.clear();
      eng.rot_scale_add(dst, sp, c);
      TorusPolynomial got(n);
      eng.from_spectral_torus(dst, got);
      TorusPolynomial ref(n);
      multiply_by_xpower_minus_one(ref, p, -c);
      EXPECT_LE(max_torus_distance(got, ref), 1e-7)
          << "c=" << c << " level=" << simd_level_name(level);
    }
  }
}

TEST(SimdEngine, AddConstantIsConstantPolynomial) {
  const int n = 128;
  for (const SimdLevel level : testable_levels()) {
    SimdFftEngine eng(n, level);
    SpectralP s(n / 2);
    const Torus32 g = double_to_torus32(0.124);
    eng.add_constant(s, g);
    TorusPolynomial out(n);
    eng.from_spectral_torus(s, out);
    EXPECT_LE(torus_distance(out.coeffs[0], g), 1e-8);
    for (int i = 1; i < n; ++i) {
      EXPECT_LE(torus_distance(out.coeffs[i], 0), 1e-8) << i;
    }
  }
}

TEST(SimdEngine, AddAssignMatchesLinearity) {
  const int n = 256;
  for (const SimdLevel level : testable_levels()) {
    Rng rng(7);
    SimdFftEngine eng(n, level);
    const TorusPolynomial p = random_torus(rng, n), q = random_torus(rng, n);
    SpectralP sp, sq, ssum;
    eng.to_spectral_torus(p, sp);
    eng.to_spectral_torus(q, sq);
    eng.to_spectral_torus(p + q, ssum);
    eng.add_assign(sp, sq);
    TorusPolynomial from_sum(n), from_add(n);
    eng.from_spectral_torus(ssum, from_sum);
    eng.from_spectral_torus(sp, from_add);
    EXPECT_LE(max_torus_distance(from_sum, from_add), 1e-7);
  }
}

// ---- decompose kernel equivalence across levels ---------------------------

TEST(SimdEngine, DecomposeBitIdenticalAcrossLevels) {
  const GadgetParams gadgets[] = {{.bg_bits = 10, .l = 3},
                                  {.bg_bits = 8, .l = 4},
                                  {.bg_bits = 8, .l = 3},
                                  {.bg_bits = 4, .l = 8}};
  Rng rng(8);
  const int n = 256;
  const TorusPolynomial p = random_torus(rng, n);
  for (const GadgetParams& g : gadgets) {
    // Reference digits via the documented per-coefficient semantics.
    std::vector<IntPolynomial> want(static_cast<size_t>(g.l),
                                    IntPolynomial(n));
    for (int i = 0; i < n; ++i) {
      int32_t d[32];
      decompose_coefficient(g, p.coeffs[static_cast<size_t>(i)], d);
      for (int j = 0; j < g.l; ++j) want[static_cast<size_t>(j)].coeffs[i] = d[j];
    }
    for (const SimdLevel level : testable_levels()) {
      std::vector<IntPolynomial> got(static_cast<size_t>(g.l),
                                     IntPolynomial(n));
      int32_t* planes[32];
      for (int j = 0; j < g.l; ++j) planes[j] = got[static_cast<size_t>(j)].coeffs.data();
      spectral_kernels(level).decompose(g.l, g.bg_bits, g.rounding_offset(),
                                        n, p.coeffs.data(), planes);
      for (int j = 0; j < g.l; ++j) {
        EXPECT_EQ(got[static_cast<size_t>(j)].coeffs,
                  want[static_cast<size_t>(j)].coeffs)
            << "digit " << j << " level " << simd_level_name(level);
      }
    }
  }
}

// ---- external product + bootstrap: decrypt-path equivalence ---------------

TEST(SimdEngine, ExternalProductMatchesDoubleEngineDecryptPath) {
  const auto& K = test::shared_keys();
  const int n = K.params.ring.n_ring;
  Rng rng = test::test_rng(0x51D);
  SpectralD dkey_spec;
  K.deng.to_spectral_int(K.sk.tlwe.s, dkey_spec);
  const TGswSample raw =
      tgsw_encrypt(K.deng, K.sk.tlwe, dkey_spec, K.params.gadget, 1,
                   K.params.ring.sigma, rng);

  TLweSample acc0(n);
  for (auto& c : acc0.a.coeffs) c = rng.uniform_torus();
  for (auto& c : acc0.b.coeffs) c = rng.uniform_torus();

  // Reference: double engine.
  auto dtgsw = tgsw_to_spectral(K.deng, raw);
  ExternalProductWorkspace<DoubleFftEngine> dws(K.deng, K.params.gadget);
  TLweSample dacc = acc0;
  external_product(K.deng, K.params.gadget, dtgsw, dacc, dws);
  const TorusPolynomial dphase = tlwe_phase(K.sk.tlwe, dacc);

  for (const SimdLevel level : testable_levels()) {
    SimdFftEngine eng(n, level);
    auto stgsw = tgsw_to_spectral(eng, raw);
    ExternalProductWorkspace<SimdFftEngine> sws(eng, K.params.gadget);
    TLweSample sacc = acc0;
    eng.counters().reset();
    external_product(eng, K.params.gadget, stgsw, sacc, sws);
    // Ciphertexts differ in float round-off; phases agree to decrypt depth.
    const TorusPolynomial sphase = tlwe_phase(K.sk.tlwe, sacc);
    EXPECT_LE(max_torus_distance(sphase, dphase), 1e-6)
        << simd_level_name(level);
    // Counter scopes: exactly 2l forward + 2 inverse kernel invocations per
    // external product, each timed once (no nesting).
    EXPECT_EQ(eng.counters().to_spectral_calls, 2 * K.params.gadget.l);
    EXPECT_EQ(eng.counters().from_spectral_calls, 2);
  }
}

/// A small random DAG over the binary gate alphabet + NOT + MUX.
struct RandomCircuit {
  CircuitBuilder b;
  std::vector<Wire> wires;
  int num_inputs;

  RandomCircuit(Rng& rng, int inputs, int gates) : num_inputs(inputs) {
    for (int i = 0; i < inputs; ++i) wires.push_back(b.input());
    for (int g = 0; g < gates; ++g) {
      const auto pick = [&] {
        return wires[rng.uniform_below(static_cast<uint32_t>(wires.size()))];
      };
      Wire w;
      switch (rng.uniform_below(8)) {
        case 0: w = b.gate_and(pick(), pick()); break;
        case 1: w = b.gate_or(pick(), pick()); break;
        case 2: w = b.gate_xor(pick(), pick()); break;
        case 3: w = b.gate_nand(pick(), pick()); break;
        case 4: w = b.gate_nor(pick(), pick()); break;
        case 5: w = b.gate_xnor(pick(), pick()); break;
        case 6: w = b.gate_not(pick()); break;
        default: w = b.gate_mux(pick(), pick(), pick()); break;
      }
      wires.push_back(w);
      b.mark_output(w);
    }
  }
};

TEST(SimdEngine, RandomCircuitsDecryptBitIdenticalScalarVsSimdVsReference) {
  const auto& K = test::shared_keys();
  const int n_ring = K.params.ring.n_ring;
  const auto dk_d = load_device_keyset(K.deng, K.ck2);
  SimdFftEngine seng(n_ring);
  const auto dk_s = load_device_keyset(seng, K.ck2);

  Rng shape_rng = test::test_rng(0x51DC1C);
  for (int trial = 0; trial < 2; ++trial) {
    const int inputs = 3 + static_cast<int>(shape_rng.uniform_below(3));
    const int gates = 7 + static_cast<int>(shape_rng.uniform_below(4));
    RandomCircuit c(shape_rng, inputs, gates);

    std::vector<bool> plain;
    Rng bit_rng = test::test_rng(77 + trial);
    for (int i = 0; i < inputs; ++i) plain.push_back(bit_rng.uniform_below(2) != 0);
    const auto encrypt_inputs = [&](Rng& rng) {
      std::vector<LweSample> in;
      for (int i = 0; i < inputs; ++i) {
        in.push_back(K.sk.encrypt_bit(plain[static_cast<size_t>(i)] ? 1 : 0, rng));
      }
      return in;
    };

    // Reference decrypted bits: double engine, single thread.
    BatchExecutor<DoubleFftEngine> dex(
        [&] { return std::make_unique<DoubleFftEngine>(n_ring); }, dk_d.bk,
        *dk_d.ks, K.params.mu(), 1);
    Rng rng_ref = test::test_rng(1234 + trial);
    const BatchResult ref = dex.run(c.b.graph(), encrypt_inputs(rng_ref));
    std::vector<int> want;
    for (size_t w = static_cast<size_t>(inputs); w < c.wires.size(); ++w) {
      want.push_back(K.sk.decrypt_bit(ref.at(c.wires[w])));
    }

    // Scalar and SIMD kernel levels, across thread counts: decrypted gate
    // outputs must be bit-identical to the reference on every wire.
    for (const SimdLevel level : testable_levels()) {
      for (const int threads : {1, 2}) {
        BatchExecutor<SimdFftEngine> ex(
            [&] { return std::make_unique<SimdFftEngine>(n_ring, level); },
            dk_s.bk, *dk_s.ks, K.params.mu(), threads);
        Rng rng_run = test::test_rng(1234 + trial); // identical ciphertexts
        const BatchResult got = ex.run(c.b.graph(), encrypt_inputs(rng_run));
        for (size_t w = static_cast<size_t>(inputs); w < c.wires.size(); ++w) {
          EXPECT_EQ(K.sk.decrypt_bit(got.at(c.wires[w])),
                    want[w - static_cast<size_t>(inputs)])
              << "trial " << trial << " level " << simd_level_name(level)
              << " threads " << threads << " wire " << w;
        }
      }
    }
  }
}

// ---- counter scope contract (rider bugfix regression) ---------------------

TEST(SimdEngine, GateBreakdownSlicesSumSanely) {
  const auto& K = test::shared_keys();
  SimdFftEngine eng(K.params.ring.n_ring);
  const auto dk = load_device_keyset(eng, K.ck2);
  auto ev = dk.make_evaluator(eng, K.params.mu());
  Rng rng = test::test_rng(0xB4EA);
  const LweSample a = K.sk.encrypt_bit(1, rng);
  const LweSample b = K.sk.encrypt_bit(0, rng);
  for (int i = 0; i < 3; ++i) (void)ev.gate_nand(a, b);
  const GateBreakdown& bd = ev.breakdown(GateKind::kNand);
  ASSERT_EQ(bd.gates, 3);
  // Fused kernels must attribute each phase at most once: the IFFT + FFT
  // slices can never exceed the measured bootstrap wall, i.e. "other" >= 0.
  EXPECT_GE(bd.other_ns, 0);
  EXPECT_LE(bd.ifft_ns + bd.fft_ns, bd.total_ns);
  EXPECT_GT(bd.ifft_ns, 0);
  EXPECT_GT(bd.fft_ns, 0);
}

} // namespace
} // namespace matcha
