#include <gtest/gtest.h>

#include "sim/chip_sim.h"

namespace matcha::sim {
namespace {

const TfheParams kParams = TfheParams::security110();

TEST(Netlist, RippleAdderShape) {
  const Netlist n = ripple_adder_netlist(4);
  EXPECT_EQ(n.size(), 20); // 5 gates per full adder
  // Dependencies reference earlier nodes only.
  for (int i = 0; i < n.size(); ++i) {
    for (int d : n.deps[i]) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, i);
    }
  }
}

TEST(Netlist, MultiplierBiggerThanAdder) {
  EXPECT_GT(array_multiplier_netlist(4).size(), ripple_adder_netlist(4).size());
}

TEST(ChipSim, AdderRunsFasterThanSerial) {
  // At m=1 the chip is compute-bound: the adder's independent gates overlap
  // almost to the 40/17 dependency bound. At m=3 the same circuit is
  // HBM-bound (the paper's memory-bound regime): the bigger unrolled key
  // stream erodes gate-level overlap, even though per-gate latency shrank.
  const Netlist n = ripple_adder_netlist(8);
  const auto r1 = simulate_circuit(kParams, 1, n);
  EXPECT_EQ(r1.gates, n.size());
  EXPECT_GT(r1.effective_parallelism, 1.8);
  EXPECT_LT(r1.time_ms, r1.gates * r1.gate_latency_ms);
  // But not faster than the critical path allows.
  EXPECT_GE(r1.time_ms, r1.critical_path * r1.gate_latency_ms * 0.99);
  const auto r3 = simulate_circuit(kParams, 3, n);
  EXPECT_GT(r3.effective_parallelism, 1.0);
  EXPECT_LT(r3.effective_parallelism, r1.effective_parallelism);
  EXPECT_GT(r3.hbm_utilization, r1.hbm_utilization);
  // Unrolling still wins on absolute latency.
  EXPECT_LT(r3.time_ms, r1.time_ms);
}

TEST(ChipSim, CriticalPathMatchesRippleStructure) {
  const Netlist n = ripple_adder_netlist(4);
  const auto r = simulate_circuit(kParams, 3, n);
  // Carry chain: ~3 gates of depth per full-adder stage.
  EXPECT_GE(r.critical_path, 8);
  EXPECT_LE(r.critical_path, 14);
}

TEST(ChipSim, WideCircuitSaturatesPipelines) {
  // 64 independent gates on 8 pipelines: parallelism near 8 (HBM permitting).
  Netlist flat;
  flat.deps.assign(64, {});
  const auto r = simulate_circuit(kParams, 1, flat);
  EXPECT_GT(r.effective_parallelism, 4.0);
  EXPECT_LE(r.effective_parallelism, 8.01);
}

TEST(ChipSim, HbmThrottlesWideCircuitsAtHighM) {
  Netlist flat;
  flat.deps.assign(64, {});
  const auto r3 = simulate_circuit(kParams, 3, flat);
  hw::MatchaConfig fat;
  fat.hbm_gbps = 5120.0;
  const auto rfat = simulate_circuit(kParams, 3, flat, fat);
  EXPECT_LT(rfat.time_ms, r3.time_ms);
}

TEST(ChipSim, WeightedGateDagEntryPoint) {
  // The GateDag overload carries per-gate bootstrap weights: free NOT gates
  // and double-cost MUXes, dispatched by dependency readiness.
  GateDag dag;
  dag.gates.resize(6);
  dag.gates[2].deps = {0, 1};
  dag.gates[2].bootstraps = 2; // a MUX
  dag.gates[3].deps = {2};
  dag.gates[3].bootstraps = 0; // a NOT: free
  dag.gates[4].deps = {2};
  dag.gates[5].deps = {3, 4};
  const auto r = simulate_circuit(kParams, 3, dag);
  EXPECT_EQ(r.gates, 6);
  EXPECT_EQ(r.total_bootstraps, 6);
  EXPECT_EQ(r.critical_path, 5); // g0(1) + MUX g2(2) + g4(1) + g5(1)
  EXPECT_GT(r.time_ms, 0.0);
  EXPECT_GT(r.bootstraps_per_s, 0.0);
  EXPECT_GT(r.effective_parallelism, 1.0);
  EXPECT_GE(r.time_ms, r.gate_latency_ms);
}

TEST(ChipSim, MultiChipShardingBeatsOneChipWhenHbmBound) {
  // m=3 is the paper's memory-bound regime: one chip's HBM channel throttles
  // the wide multiplier, so sharding across two chips (two HBM channels, two
  // pipeline banks) must strictly beat it even though the shards now pay for
  // cross-chip wire transfers.
  const Netlist n = array_multiplier_netlist(8);
  GateDag dag;
  dag.gates.resize(n.deps.size());
  for (size_t i = 0; i < n.deps.size(); ++i) dag.gates[i].deps = n.deps[i];
  const auto r1 = simulate_circuit_multichip(kParams, 3, dag, 1);
  const auto r2 = simulate_circuit_multichip(kParams, 3, dag, 2);
  const auto r4 = simulate_circuit_multichip(kParams, 3, dag, 4);
  EXPECT_LT(r2.time_ms, r1.time_ms);
  EXPECT_LT(r4.time_ms, r2.time_ms);
  EXPECT_GT(r2.cut_wires, 0);
  EXPECT_GT(r2.transfers, 0);
  EXPECT_GT(r2.transfer_busy_ms, 0.0);
  // The partition stays load-balanced: no chip hoards the bootstraps.
  ASSERT_EQ(r2.chip_bootstraps.size(), 2u);
  const int64_t total = r2.chip_bootstraps[0] + r2.chip_bootstraps[1];
  EXPECT_EQ(total, dag.total_bootstraps());
  EXPECT_GT(r2.chip_bootstraps[0] * 3, total); // each side holds > 1/3
  EXPECT_GT(r2.chip_bootstraps[1] * 3, total);
  // One chip reduces exactly to the single-chip scheduler.
  const auto legacy = simulate_circuit(kParams, 3, dag);
  EXPECT_DOUBLE_EQ(r1.time_ms, legacy.time_ms);
  EXPECT_EQ(r1.transfers, 0);
  // Round-2 A/B: the reported schedule is never slower than the PR-4
  // greedy-KL baseline it was measured against.
  for (const auto* r : {&r2, &r4}) {
    EXPECT_LE(r->time_ms, r->time_greedy_ms * (1 + 1e-12));
    EXPECT_GE(r->refine_gain, 0.0);
    EXPECT_TRUE(r->partition_source == "greedy-kl" ||
                r->partition_source == "latency-aware")
        << r->partition_source;
  }
}

TEST(ChipSim, BatchPolicyReplicatesWhenBatchCoversChips) {
  // batch == chips: the policy must pick pure replication (one whole circuit
  // per chip, zero link traffic), and -- with identical chips -- the whole
  // batch finishes in exactly one circuit's single-chip makespan.
  const Netlist n = ripple_adder_netlist(8);
  GateDag dag;
  dag.gates.resize(n.deps.size());
  for (size_t i = 0; i < n.deps.size(); ++i) dag.gates[i].deps = n.deps[i];

  const auto r4 = simulate_batch_policy(kParams, 3, dag, 4, 4);
  EXPECT_EQ(r4.policy, BatchPolicy::kReplicate);
  EXPECT_EQ(r4.policy_label, "replicate");
  EXPECT_EQ(r4.replica_groups, 4);
  EXPECT_EQ(r4.group_size, 1);
  EXPECT_EQ(r4.transfers, 0);
  EXPECT_EQ(r4.cut_wires, 0);
  EXPECT_EQ(r4.total_bootstraps, 4 * dag.total_bootstraps());
  const auto single = simulate_circuit(kParams, 3, dag);
  EXPECT_NEAR(r4.time_ms, single.time_ms, single.time_ms * 1e-12);
  // Throughput scales near-linearly against the same batch jammed through
  // one chip (the HBM-bound m=3 regime serializes it there).
  const auto r1 = simulate_batch_policy(kParams, 3, dag, 4, 1);
  EXPECT_EQ(r1.policy, BatchPolicy::kReplicate); // 1 chip: trivially so
  EXPECT_GT(r4.circuits_per_s, 3.0 * r1.circuits_per_s);
  // Every variant priced the same work.
  ASSERT_FALSE(r4.considered.empty());
  for (const auto& v : r4.considered) {
    EXPECT_GE(v.time_ms, r4.time_ms * (1 - 1e-12)) << v.policy_label;
  }
}

TEST(ChipSim, BatchPolicyShardsSingletons) {
  // batch == 1 on several chips: latency is the only objective, and only
  // sharding shortens it, so the policy must not fall back to replication
  // (which would idle every chip but one).
  const Netlist n = array_multiplier_netlist(6);
  GateDag dag;
  dag.gates.resize(n.deps.size());
  for (size_t i = 0; i < n.deps.size(); ++i) dag.gates[i].deps = n.deps[i];

  const auto r = simulate_batch_policy(kParams, 3, dag, 1, 2);
  EXPECT_EQ(r.policy, BatchPolicy::kShard);
  EXPECT_EQ(r.replica_groups, 1);
  EXPECT_EQ(r.group_size, 2);
  EXPECT_GT(r.transfers, 0);
  // Sharding won on merit: the single-chip (replicate) variant was priced
  // and lost.
  ASSERT_EQ(r.considered.size(), 2u);
  for (const auto& v : r.considered) {
    if (v.policy_label == "replicate") EXPECT_GT(v.time_ms, r.time_ms);
  }
}

TEST(ChipSim, HeterogeneousChipsWeightLoadByThroughput) {
  // A fast chip (8 pipelines, m=3) next to a weak one (2 pipelines, m=1):
  // capacity-weighted partitioning must respect the per-chip caps it set,
  // and the A/B guarantee against the capacity-blind greedy baseline holds.
  const Netlist n = array_multiplier_netlist(6);
  GateDag dag;
  dag.gates.resize(n.deps.size());
  for (size_t i = 0; i < n.deps.size(); ++i) dag.gates[i].deps = n.deps[i];

  const std::vector<ChipSpec> chips{{8, 3}, {2, 1}};
  const auto r = simulate_circuit_multichip(kParams, dag, chips);
  EXPECT_EQ(r.num_chips, 2);
  EXPECT_EQ(r.gates, n.size());
  EXPECT_EQ(r.total_bootstraps, dag.total_bootstraps());
  EXPECT_GT(r.time_ms, 0.0);
  EXPECT_LE(r.time_ms, r.time_greedy_ms * (1 + 1e-12));
  ASSERT_EQ(r.chip_bootstraps.size(), 2u);
  EXPECT_EQ(r.chip_bootstraps[0] + r.chip_bootstraps[1],
            dag.total_bootstraps());
  ASSERT_EQ(r.chip_occupancy.size(), 2u);
  // The fast chip carries at least as much of the circuit.
  EXPECT_GE(r.chip_bootstraps[0], r.chip_bootstraps[1]);
}

TEST(ChipSim, EmptyNetlist) {
  const auto r = simulate_circuit(kParams, 2, Netlist{});
  EXPECT_EQ(r.gates, 0);
  EXPECT_EQ(r.time_ms, 0.0);
}

TEST(ChipSim, MorePipelinesHelpWideCircuits) {
  Netlist flat;
  flat.deps.assign(64, {});
  hw::MatchaConfig big;
  big.pipelines = 16;
  big.hbm_gbps = 2560.0; // keep HBM out of the way
  hw::MatchaConfig base;
  base.hbm_gbps = 2560.0;
  const auto r8 = simulate_circuit(kParams, 1, flat, base);
  const auto r16 = simulate_circuit(kParams, 1, flat, big);
  EXPECT_LT(r16.time_ms, r8.time_ms * 0.7);
}

} // namespace
} // namespace matcha::sim
