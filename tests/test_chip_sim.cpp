#include <gtest/gtest.h>

#include "sim/chip_sim.h"

namespace matcha::sim {
namespace {

const TfheParams kParams = TfheParams::security110();

TEST(Netlist, RippleAdderShape) {
  const Netlist n = ripple_adder_netlist(4);
  EXPECT_EQ(n.size(), 20); // 5 gates per full adder
  // Dependencies reference earlier nodes only.
  for (int i = 0; i < n.size(); ++i) {
    for (int d : n.deps[i]) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, i);
    }
  }
}

TEST(Netlist, MultiplierBiggerThanAdder) {
  EXPECT_GT(array_multiplier_netlist(4).size(), ripple_adder_netlist(4).size());
}

TEST(ChipSim, AdderRunsFasterThanSerial) {
  const Netlist n = ripple_adder_netlist(8);
  const auto r = simulate_circuit(kParams, 3, n);
  EXPECT_EQ(r.gates, n.size());
  EXPECT_GT(r.effective_parallelism, 1.2);
  EXPECT_LT(r.time_ms, r.gates * r.gate_latency_ms);
  // But not faster than the critical path allows.
  EXPECT_GE(r.time_ms, r.critical_path * r.gate_latency_ms * 0.99);
}

TEST(ChipSim, CriticalPathMatchesRippleStructure) {
  const Netlist n = ripple_adder_netlist(4);
  const auto r = simulate_circuit(kParams, 3, n);
  // Carry chain: ~3 gates of depth per full-adder stage.
  EXPECT_GE(r.critical_path, 8);
  EXPECT_LE(r.critical_path, 14);
}

TEST(ChipSim, WideCircuitSaturatesPipelines) {
  // 64 independent gates on 8 pipelines: parallelism near 8 (HBM permitting).
  Netlist flat;
  flat.deps.assign(64, {});
  const auto r = simulate_circuit(kParams, 1, flat);
  EXPECT_GT(r.effective_parallelism, 4.0);
  EXPECT_LE(r.effective_parallelism, 8.01);
}

TEST(ChipSim, HbmThrottlesWideCircuitsAtHighM) {
  Netlist flat;
  flat.deps.assign(64, {});
  const auto r3 = simulate_circuit(kParams, 3, flat);
  hw::MatchaConfig fat;
  fat.hbm_gbps = 5120.0;
  const auto rfat = simulate_circuit(kParams, 3, flat, fat);
  EXPECT_LT(rfat.time_ms, r3.time_ms);
}

TEST(ChipSim, EmptyNetlist) {
  const auto r = simulate_circuit(kParams, 2, Netlist{});
  EXPECT_EQ(r.gates, 0);
  EXPECT_EQ(r.time_ms, 0.0);
}

TEST(ChipSim, MorePipelinesHelpWideCircuits) {
  Netlist flat;
  flat.deps.assign(64, {});
  hw::MatchaConfig big;
  big.pipelines = 16;
  big.hbm_gbps = 2560.0; // keep HBM out of the way
  hw::MatchaConfig base;
  base.hbm_gbps = 2560.0;
  const auto r8 = simulate_circuit(kParams, 1, flat, base);
  const auto r16 = simulate_circuit(kParams, 1, flat, big);
  EXPECT_LT(r16.time_ms, r8.time_ms * 0.7);
}

} // namespace
} // namespace matcha::sim
