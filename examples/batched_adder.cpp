// Record-optimize-execute variant of encrypted_adder.cpp: the adder circuit
// is recorded into a GateGraph via exec::CircuitBuilder, run through the
// optimization pipeline (constant folding, CSE, dead-gate elimination
// against the marked outputs), and executed wavefront-parallel by the
// BatchExecutor -- independent gates run concurrently (the software analogue
// of MATCHA's parallel TGSW/EP pipelines).
#include <cstdio>
#include <memory>
#include <vector>

#include "circuits/word.h"
#include "exec/batch_executor.h"
#include "exec/circuit_builder.h"
#include "fft/double_fft.h"

int main() {
  using namespace matcha;
  using circuits::EncWord;
  Rng rng(77);
  const TfheParams params = TfheParams::test_small();
  std::printf("keygen (test_small, m=2)...\n");
  const SecretKeyset sk = SecretKeyset::generate(params, rng);
  const CloudKeyset cloud = make_cloud_keyset(sk, /*unroll_m=*/2, rng);
  DoubleFftEngine eng(params.ring.n_ring);
  const auto dev = load_device_keyset(eng, cloud);

  // Record four independent 4-bit additions (plus both comparators, whose
  // shared XNOR terms give the optimizer CSE hits) into one gate DAG.
  exec::CircuitBuilder builder;
  exec::SymWordCircuits wc(builder);
  std::vector<exec::SymWord> sums;
  const int cases[][2] = {{3, 5}, {9, 9}, {15, 1}, {7, 8}};
  for (int i = 0; i < 4; ++i) {
    const exec::SymWord x = builder.input_word(4);
    const exec::SymWord y = builder.input_word(4);
    sums.push_back(wc.add(x, y, nullptr, /*with_carry_out=*/true));
    builder.mark_output(sums.back());
    // Recorded but never marked as outputs: dead-gate elimination drops them.
    (void)wc.greater_than(x, y);
    (void)wc.equal(x, y);
  }
  std::printf("recorded %d gates over %d inputs (%lld bootstrappings)\n",
              builder.graph().num_gates(), builder.graph().num_inputs(),
              static_cast<long long>(builder.graph().bootstrap_count()));

  // Optimize: constant folding + CSE + DCE against the marked outputs.
  const exec::CompiledGraph opt = builder.compile();
  const auto& graph = opt.graph;
  std::printf("optimized to %d gates (%d folded, %d cse, %d dead), %lld "
              "bootstrappings\n",
              opt.stats.gates_after, opt.stats.folded, opt.stats.cse_hits,
              opt.stats.dead_removed,
              static_cast<long long>(graph.bootstrap_count()));

  // Encrypt the inputs in registration order and run on 4 worker threads.
  std::vector<LweSample> inputs;
  for (const auto& c : cases) {
    for (const int v : {c[0], c[1]}) {
      const EncWord e = circuits::encrypt_word(sk, v, 4, rng);
      inputs.insert(inputs.end(), e.bits.begin(), e.bits.end());
    }
  }
  exec::BatchExecutor<DoubleFftEngine> ex(
      [&] { return std::make_unique<DoubleFftEngine>(params.ring.n_ring); },
      dev.bk, *dev.ks, params.mu(), /*num_threads=*/4);
  const exec::BatchResult r = ex.run(graph, std::move(inputs));

  int failures = 0;
  for (int i = 0; i < 4; ++i) {
    EncWord sum;
    for (const exec::Wire w : sums[i].bits) sum.bits.push_back(r.at(opt.remap(w)));
    const uint64_t got = circuits::decrypt_word(sk, sum);
    const int want = cases[i][0] + cases[i][1];
    std::printf("%2d + %2d = %2llu homomorphically %s\n", cases[i][0],
                cases[i][1], static_cast<unsigned long long>(got),
                got == static_cast<uint64_t>(want) ? "ok" : "WRONG");
    failures += got != static_cast<uint64_t>(want);
  }
  std::printf("batch: %lld gates in %.0f ms across %d levels, %d threads\n",
              static_cast<long long>(ex.last_stats().gates),
              ex.last_stats().wall_ms, ex.last_stats().levels,
              ex.num_threads());
  return failures;
}
