// Quickstart: generate keys, encrypt two bits, evaluate homomorphic gates on
// the ciphertexts, decrypt -- the end-to-end TFHE flow at the paper's 110-bit
// security parameters, with both the exact double-precision FFT engine and
// MATCHA's approximate multiplication-less integer engine (64-bit DVQTFs).
#include <cstdio>

#include "fft/double_fft.h"
#include "fft/lift_fft.h"
#include "tfhe/keyset.h"

int main() {
  using namespace matcha;
  Rng rng(2024);

  // Client side: secret keys + cloud keys (bootstrapping key unrolled m=2).
  const TfheParams params = TfheParams::security110();
  std::printf("generating keys (N=%d, n=%d, Bg=2^%d, l=%d, m=2)...\n",
              params.ring.n_ring, params.lwe.n, params.gadget.bg_bits,
              params.gadget.l);
  const SecretKeyset sk = SecretKeyset::generate(params, rng);
  const CloudKeyset cloud = make_cloud_keyset(sk, /*unroll_m=*/2, rng);

  const int a = 1, b = 0;
  const LweSample ca = sk.encrypt_bit(a, rng);
  const LweSample cb = sk.encrypt_bit(b, rng);

  // Server side, engine #1: exact double-precision FFT (TFHE library setup).
  {
    DoubleFftEngine eng(params.ring.n_ring);
    const auto dev = load_device_keyset(eng, cloud);
    auto ev = dev.make_evaluator(eng, params.mu());
    std::printf("[double] NAND(%d,%d)=%d AND=%d OR=%d XOR=%d XNOR=%d NOT(a)=%d\n",
                a, b, sk.decrypt_bit(ev.gate_nand(ca, cb)),
                sk.decrypt_bit(ev.gate_and(ca, cb)),
                sk.decrypt_bit(ev.gate_or(ca, cb)),
                sk.decrypt_bit(ev.gate_xor(ca, cb)),
                sk.decrypt_bit(ev.gate_xnor(ca, cb)),
                sk.decrypt_bit(ev.gate_not(ca)));
  }

  // Server side, engine #2: MATCHA's approximate integer FFT. The extra
  // error it injects is absorbed by the per-gate bootstrapping.
  {
    LiftFftEngine eng(params.ring.n_ring, /*twiddle_bits=*/64);
    const auto dev = load_device_keyset(eng, cloud);
    auto ev = dev.make_evaluator(eng, params.mu());
    std::printf("[lift64] NAND(%d,%d)=%d AND=%d OR=%d XOR=%d XNOR=%d MUX(a;b,a)=%d\n",
                a, b, sk.decrypt_bit(ev.gate_nand(ca, cb)),
                sk.decrypt_bit(ev.gate_and(ca, cb)),
                sk.decrypt_bit(ev.gate_or(ca, cb)),
                sk.decrypt_bit(ev.gate_xor(ca, cb)),
                sk.decrypt_bit(ev.gate_xnor(ca, cb)),
                sk.decrypt_bit(ev.gate_mux(ca, cb, ca)));
  }
  std::printf("done.\n");
  return 0;
}
