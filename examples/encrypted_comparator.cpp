// Encrypted 4-bit comparator: computes [x > y], [x == y] on ciphertexts --
// the branch-free encrypted control flow pattern (MUX-based) that encrypted
// general-purpose computing builds on.
//
//   eq_i = XNOR(x_i, y_i);    gt = MUX(eq_i, gt, x_i AND NOT y_i)  (MSB down)
#include <cstdio>
#include <vector>

#include "fft/double_fft.h"
#include "tfhe/keyset.h"

int main() {
  using namespace matcha;
  Rng rng(31);
  const TfheParams params = TfheParams::security110();
  std::printf("keygen (110-bit, m=2)...\n");
  const SecretKeyset sk = SecretKeyset::generate(params, rng);
  const CloudKeyset cloud = make_cloud_keyset(sk, 2, rng);
  DoubleFftEngine eng(params.ring.n_ring);
  const auto dev = load_device_keyset(eng, cloud);
  auto ev = dev.make_evaluator(eng, params.mu());

  auto encrypt4 = [&](int v) {
    std::vector<LweSample> bits;
    for (int i = 0; i < 4; ++i) bits.push_back(sk.encrypt_bit((v >> i) & 1, rng));
    return bits;
  };

  int failures = 0;
  const int cases[][2] = {{12, 7}, {7, 12}, {9, 9}, {0, 15}};
  for (const auto& c : cases) {
    const auto x = encrypt4(c[0]);
    const auto y = encrypt4(c[1]);
    LweSample gt = sk.encrypt_bit(0, rng);
    LweSample eq = sk.encrypt_bit(1, rng);
    for (int i = 3; i >= 0; --i) { // MSB first
      LweSample bit_eq = ev.gate_xnor(x[i], y[i]);
      LweSample x_gt_y = ev.gate_and(x[i], ev.gate_not(y[i]));
      gt = ev.gate_mux(eq, ev.gate_mux(bit_eq, gt, x_gt_y), gt);
      eq = ev.gate_and(eq, bit_eq);
    }
    const int got_gt = sk.decrypt_bit(gt);
    const int got_eq = sk.decrypt_bit(eq);
    const int want_gt = c[0] > c[1], want_eq = c[0] == c[1];
    std::printf("x=%2d y=%2d : [x>y]=%d (want %d), [x==y]=%d (want %d) %s\n",
                c[0], c[1], got_gt, want_gt, got_eq, want_eq,
                (got_gt == want_gt && got_eq == want_eq) ? "ok" : "WRONG");
    failures += (got_gt != want_gt) + (got_eq != want_eq);
  }
  return failures;
}
