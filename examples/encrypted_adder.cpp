// Encrypted 4-bit ripple-carry adder -- the classic TFHE-as-a-CPU workload
// the paper's introduction motivates (a TFHE-based RISC-V runs at ~1 Hz
// because circuits like this one cost a bootstrapping per gate).
//
// Each full adder: sum = a ^ b ^ cin;  cout = (a & b) | (cin & (a ^ b)),
// i.e. 5 two-input gates -> 20 gates + final carry for 4-bit + carry out.
#include <cstdio>
#include <vector>

#include "fft/lift_fft.h"
#include "tfhe/keyset.h"

namespace {

using namespace matcha;

struct EncInt4 {
  std::vector<LweSample> bits; // LSB first
};

EncInt4 encrypt4(const SecretKeyset& sk, int v, Rng& rng) {
  EncInt4 e;
  for (int i = 0; i < 4; ++i) e.bits.push_back(sk.encrypt_bit((v >> i) & 1, rng));
  return e;
}

int decrypt5(const SecretKeyset& sk, const std::vector<LweSample>& bits) {
  int v = 0;
  for (size_t i = 0; i < bits.size(); ++i) v |= sk.decrypt_bit(bits[i]) << i;
  return v;
}

template <class Engine>
std::vector<LweSample> add4(GateEvaluator<Engine>& ev, const SecretKeyset& sk,
                            const EncInt4& x, const EncInt4& y, Rng& rng) {
  std::vector<LweSample> sum;
  LweSample carry = sk.encrypt_bit(0, rng); // fresh encrypted zero carry-in
  for (int i = 0; i < 4; ++i) {
    LweSample axb = ev.gate_xor(x.bits[i], y.bits[i]);
    sum.push_back(ev.gate_xor(axb, carry));
    LweSample and1 = ev.gate_and(x.bits[i], y.bits[i]);
    LweSample and2 = ev.gate_and(carry, axb);
    carry = ev.gate_or(and1, and2);
  }
  sum.push_back(carry); // carry-out = bit 4
  return sum;
}

} // namespace

int main() {
  using namespace matcha;
  Rng rng(77);
  const TfheParams params = TfheParams::security110();
  std::printf("keygen (110-bit, m=2)...\n");
  const SecretKeyset sk = SecretKeyset::generate(params, rng);
  const CloudKeyset cloud = make_cloud_keyset(sk, 2, rng);

  LiftFftEngine eng(params.ring.n_ring, 64);
  const auto dev = load_device_keyset(eng, cloud);
  auto ev = dev.make_evaluator(eng, params.mu());

  int failures = 0;
  const int cases[][2] = {{3, 5}, {9, 9}, {15, 1}, {7, 8}};
  for (const auto& c : cases) {
    const EncInt4 ex = encrypt4(sk, c[0], rng);
    const EncInt4 ey = encrypt4(sk, c[1], rng);
    const auto esum = add4(ev, sk, ex, ey, rng);
    const int got = decrypt5(sk, esum);
    const int want = c[0] + c[1];
    std::printf("%2d + %2d = %2d homomorphically (20 gates) %s\n", c[0], c[1],
                got, got == want ? "ok" : "WRONG");
    failures += got != want;
  }
  return failures;
}
