// Architecture explorer: drives the cycle-level simulator across unroll
// factors and design variants (EP-core MAC width, TGSW-cluster lanes, HBM
// bandwidth) -- the design-space walk an architect would do on top of this
// library before committing to the paper's configuration.
#include <cstdio>

#include "sim/matcha_sim.h"

int main() {
  using namespace matcha;
  const TfheParams p = TfheParams::security110();

  std::printf("MATCHA design-space exploration (110-bit TFHE)\n\n");
  std::printf("Baseline configuration (paper):\n");
  std::printf("%2s %10s %10s %10s %8s %8s %8s %8s\n", "m", "lat(ms)", "gate/s",
              "op/s/W", "utilTGSW", "utilEP", "utilHBM", "MB/gate");
  for (int m = 1; m <= 5; ++m) {
    const auto r = sim::simulate_gate(p, m);
    std::printf("%2d %10.3f %10.0f %10.1f %8.2f %8.2f %8.2f %8.1f\n", m,
                r.latency_ms, r.gates_per_s, r.gates_per_s_per_w, r.util_tgsw,
                r.util_ep, r.util_hbm, r.hbm_mb);
  }

  std::printf("\nVariant: 2x EP-core MAC width (8 complex slices):\n");
  hw::MatchaConfig wide;
  wide.ep_mults = 8;
  wide.ep_adders = 8;
  for (int m = 1; m <= 4; ++m) {
    const auto r = sim::simulate_gate(p, m, wide);
    std::printf("  m=%d lat=%.3f ms, %0.f gate/s\n", m, r.latency_ms,
                r.gates_per_s);
  }

  std::printf("\nVariant: half HBM bandwidth (320 GB/s):\n");
  hw::MatchaConfig slow_mem;
  slow_mem.hbm_gbps = 320.0;
  for (int m = 1; m <= 4; ++m) {
    const auto r = sim::simulate_gate(p, m, slow_mem);
    std::printf("  m=%d lat=%.3f ms, %0.f gate/s (HBM util %.2f)\n", m,
                r.latency_ms, r.gates_per_s, r.util_hbm);
  }

  std::printf("\nVariant: 16 pipelines:\n");
  hw::MatchaConfig big;
  big.pipelines = 16;
  for (int m = 1; m <= 4; ++m) {
    const auto r = sim::simulate_gate(p, m, big);
    std::printf("  m=%d lat=%.3f ms, %0.f gate/s, %0.1f op/s/W\n", m,
                r.latency_ms, r.gates_per_s, r.gates_per_s_per_w);
  }
  return 0;
}
