// Programmable bootstrapping demo: evaluate arbitrary lookup tables on
// encrypted 2-bit messages during noise refresh -- the primitive behind
// encrypted neural inference (activation functions as LUTs) built on the
// same blind-rotation datapath MATCHA accelerates.
#include <cstdio>
#include <vector>

#include "fft/lift_fft.h"
#include "tfhe/functional.h"
#include "tfhe/keyset.h"

int main() {
  using namespace matcha;
  Rng rng(4242);
  const TfheParams params = TfheParams::security110();
  std::printf("keygen (110-bit, m=2)...\n");
  const SecretKeyset sk = SecretKeyset::generate(params, rng);
  const CloudKeyset cloud = make_cloud_keyset(sk, 2, rng);
  LiftFftEngine eng(params.ring.n_ring, 64);
  const auto bk = load_bootstrap_key(eng, cloud.bk);
  BootstrapWorkspace<LiftFftEngine> ws(eng, params.gadget);

  const int slots = 4;
  auto lut = [&](auto f) {
    std::vector<Torus32> vals(slots);
    for (int i = 0; i < slots; ++i) vals[i] = encode_message(f(i), slots);
    return make_lut_testvector(params.ring.n_ring, vals);
  };
  const TorusPolynomial square = lut([&](int m) { return (m * m) % slots; });
  const TorusPolynomial relu = lut([&](int m) { return m >= 2 ? m : 0; });

  std::printf("m   square(m) mod 4   threshold(m)\n");
  int failures = 0;
  for (int m = 0; m < slots; ++m) {
    const LweSample c = encrypt_message(sk.lwe, m, slots, params.lwe.sigma, rng);
    const int sq = decrypt_message(
        sk.lwe, functional_bootstrap(eng, bk, cloud.ks, square, c, ws), slots);
    const int th = decrypt_message(
        sk.lwe, functional_bootstrap(eng, bk, cloud.ks, relu, c, ws), slots);
    const bool ok = sq == (m * m) % slots && th == (m >= 2 ? m : 0);
    failures += !ok;
    std::printf("%d   %9d %16d   %s\n", m, sq, th, ok ? "ok" : "WRONG");
  }
  return failures;
}
