// A miniature encrypted processor -- the paper's headline motivation ("a
// TFHE-based simple RISC-V CPU comprising thousands of TFHE gates can run at
// only 1.25 Hz"). A 4-bit accumulator machine executes a short *encrypted*
// program: neither the instructions' operands nor any intermediate value is
// ever visible to the evaluating server.
//
//   opcode 0: ACC <- ACC + imm
//   opcode 1: ACC <- ACC XOR imm
// The opcode bit itself is encrypted; every step evaluates BOTH datapaths
// homomorphically and selects with a word MUX (branch-free encrypted
// control flow).
#include <chrono>
#include <cstdio>
#include <vector>

#include "circuits/word.h"
#include "fft/double_fft.h"

int main() {
  using namespace matcha;
  using namespace matcha::circuits;
  Rng rng(99);
  const TfheParams params = TfheParams::security110();
  std::printf("keygen (110-bit, m=2)...\n");
  const SecretKeyset sk = SecretKeyset::generate(params, rng);
  const CloudKeyset cloud = make_cloud_keyset(sk, 2, rng);
  DoubleFftEngine eng(params.ring.n_ring);
  const auto dev = load_device_keyset(eng, cloud);
  auto ev = dev.make_evaluator(eng, params.mu());
  WordCircuits<DoubleFftEngine> wc(ev);

  struct Insn {
    int opcode; // 0 = ADD, 1 = XOR
    uint64_t imm;
  };
  const std::vector<Insn> program = {{0, 3}, {0, 5}, {1, 0xF}, {0, 1}};

  // Encrypt the program and the initial accumulator.
  struct EncInsn {
    LweSample opcode;
    EncWord imm;
  };
  std::vector<EncInsn> enc_program;
  for (const auto& insn : program) {
    enc_program.push_back(
        {sk.encrypt_bit(insn.opcode, rng), encrypt_word(sk, insn.imm, 4, rng)});
  }
  EncWord acc = encrypt_word(sk, 0, 4, rng);
  uint64_t ref = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t pc = 0; pc < program.size(); ++pc) {
    const EncWord sum = wc.add(acc, enc_program[pc].imm, nullptr, false);
    const EncWord xr = wc.bit_xor(acc, enc_program[pc].imm);
    acc = wc.mux(enc_program[pc].opcode, xr, sum); // opcode=1 -> XOR
    ref = program[pc].opcode ? (ref ^ program[pc].imm)
                             : ((ref + program[pc].imm) & 0xF);
    std::printf("step %zu: ACC = %llu (expected %llu) %s\n", pc,
                static_cast<unsigned long long>(decrypt_word(sk, acc)),
                static_cast<unsigned long long>(ref),
                decrypt_word(sk, acc) == ref ? "ok" : "WRONG");
  }
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  std::printf("%lld bootstrapped gates in %.1f s -> %.1f Hz instruction rate "
              "in software (the paper's accelerator exists to lift exactly "
              "this number)\n",
              static_cast<long long>(wc.budget().bootstrapped), s,
              program.size() / s);
  return decrypt_word(sk, acc) == ref ? 0 : 1;
}
